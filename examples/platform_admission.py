#!/usr/bin/env python3
"""Run-time platform management: libraries, admission, migration.

The design-time/run-time split, end to end in one process:

1. generate two synthetic applications (``repro.scenarios``) sharing one
   4-tile FSL platform and build an *operating-point library* for each
   at design time -- a Pareto front of precomputed mappings persisted in
   the workspace artifact store;
2. start the flow service over that warm workspace and **admit** both
   applications through ``POST /v1/platform/apps``: each admission
   selects a stored point that fits the residual tiles, with zero
   re-analysis;
3. **depart** the first application with ``migrate=True`` and watch the
   survivor move to a better stored point now that tiles freed up --
   paying a state-transfer downtime the manager accounts in cycles;
4. print the occupancy timeline after every transition, straight from
   ``GET /v1/platform``.

Run:  python examples/platform_admission.py
"""

import sys
import tempfile
import threading
from fractions import Fraction
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent
sys.path.insert(0, str(EXAMPLES.parent / "src"))

from repro.artifacts import ArtifactStore  # noqa: E402
from repro.flow.spec import ArchSpec  # noqa: E402
from repro.runtime import build_library  # noqa: E402
from repro.scenarios import (  # noqa: E402
    generate_scenarios,
    scenario_flow_spec,
)
from repro.service import FlowServiceClient, serve  # noqa: E402

#: The managed platform every application targets.
ARCH = ArchSpec(tiles=4, interconnect="fsl")


def occupancy(client: FlowServiceClient, moment: str) -> None:
    """One line of the occupancy timeline, from ``GET /v1/platform``."""
    status = client.platform_status()
    apps = ", ".join(
        f"{app['app']}={app['id']}@[{','.join(app['tiles'])}]"
        f" {app['guarantee']}"
        for app in status["apps"]
    ) or "(empty)"
    free = status["residual"]["free_tiles"]
    print(f"  {moment:<22} free={free or '[]'}  {apps}")


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-platform-"))

    # -- design time: build the operating-point libraries --------------
    # splitjoin scenarios parallelize, so each library holds points from
    # 1 tile up to the full platform -- room for migration later
    specs = [
        scenario_flow_spec(s, architecture=ARCH)
        for s in generate_scenarios("splitjoin", 2, seed=3)
    ]
    store = ArtifactStore(workspace / "artifacts")
    for spec in specs:
        build = build_library(spec, store=store)
        labels = ", ".join(p.label for p in build.library.points)
        print(f"library {spec.name}: {build.analyses} analyses -> "
              f"{len(build.library)} point(s) [{labels}]")

    # -- run time: serve the warm workspace ----------------------------
    server = serve(workspace, port=0, jobs=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"\nflow service: {server.url}  (workspace {workspace})\n")

    client = FlowServiceClient(server.url)
    try:
        print("occupancy timeline:")

        # -- admission: selection, not analysis ------------------------
        first = client.platform_admit(specs[0])
        occupancy(client, f"admit {specs[0].name}")
        second = client.platform_admit(specs[1])
        occupancy(client, f"admit {specs[1].name}")
        for decision in (first, second):
            assert decision["source"] == "library"
            assert decision["analyses"] == 0
        print("\nboth admissions came from stored operating points "
              "(zero analyses)")

        # -- departure with migration ----------------------------------
        outcome = client.platform_depart(first["app_id"], migrate=True)
        occupancy(client, f"depart {outcome['app']}")
        for moved in outcome["migrations"]:
            gain = (
                Fraction(moved["to_guarantee"])
                / Fraction(moved["from_guarantee"])
            )
            print(f"\n{moved['app']} migrated to point "
                  f"{moved['point']!r} on [{', '.join(moved['tiles'])}]: "
                  f"guarantee {moved['from_guarantee']} -> "
                  f"{moved['to_guarantee']} ({float(gain):.2f}x) for "
                  f"{moved['downtime_cycles']} cycles of downtime")

        # the survivor's gain is real: the healthz counters confirm the
        # whole run-time sequence never ran a mapping analysis
        health = client.health()["platform"]
        print(f"\ncounters: {health['counters']}")
        assert health["counters"]["analyses"] == 0
    finally:
        server.shutdown()
        server.server_close()
        server.scheduler.close()
        thread.join(timeout=10)


if __name__ == "__main__":
    main()
