"""(De)serialization cost models: processing element vs. communication assist.

Section 4.1: serialization "can either be performed by the processing
element of the tile ..., or by the addition of some dedicated communication
hardware".  The choice matters twice:

* the *cost per token* (cycles for ``s1``/``d1`` in the Fig. 4 model);
* *who pays it*: PE-based serialization consumes processor time that
  "can not be spent on running actor code", so it serializes with actor
  firings on the tile; a CA runs concurrently with the PE.

The Section 6.3 experiment swaps :class:`PESerialization` for
:class:`CASerialization` with the CA execution times of [13] and observes an
SDF3-predicted throughput increase of up to 300 %.

Default constants model a Microblaze software loop (a per-token function
call overhead plus a load/store-FSL-put per word) and a CA that streams a
word per cycle after a small setup; they are calibration points, not
measurements of the original boards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ArchitectureError


@dataclass(frozen=True)
class SerializationModel:
    """Cycles to (de)serialize a token of ``n`` words, and who executes it.

    ``serialize_cycles(n) = setup + per_word * n`` and likewise for
    deserialization.  ``occupies_pe`` decides whether those cycles run on
    the tile's processor (True: software NI library) or on dedicated
    hardware concurrent with the PE (False: communication assist).
    """

    name: str
    setup_cycles: int
    cycles_per_word: int
    deserialize_setup_cycles: int
    deserialize_cycles_per_word: int
    occupies_pe: bool

    def __post_init__(self) -> None:
        if min(
            self.setup_cycles,
            self.cycles_per_word,
            self.deserialize_setup_cycles,
            self.deserialize_cycles_per_word,
        ) < 0:
            raise ArchitectureError("serialization costs must be >= 0")

    def serialize_cycles(self, n_words: int) -> int:
        """Execution time of ``s1`` for an ``n_words`` token."""
        if n_words <= 0:
            raise ArchitectureError("token must serialize to >= 1 word")
        return self.setup_cycles + self.cycles_per_word * n_words

    def deserialize_cycles(self, n_words: int) -> int:
        """Execution time of ``d1``-side reassembly for an ``n_words``
        token (charged per token, after its last word arrives)."""
        if n_words <= 0:
            raise ArchitectureError("token must deserialize from >= 1 word")
        return (
            self.deserialize_setup_cycles
            + self.deserialize_cycles_per_word * n_words
        )


def PESerialization(
    setup_cycles: int = 40,
    cycles_per_word: int = 6,
) -> SerializationModel:
    """Software (de)serialization on the Microblaze (the current MAMPS tile
    library, Section 5.3.2: "a software library implementing
    (de-)serialization").

    Defaults: ~40 cycles call/bookkeeping overhead per token and 6 cycles
    per word (load, FSL put, loop) -- a plausible Microblaze inner loop.
    """
    return SerializationModel(
        name="pe-software",
        setup_cycles=setup_cycles,
        cycles_per_word=cycles_per_word,
        deserialize_setup_cycles=setup_cycles,
        deserialize_cycles_per_word=cycles_per_word,
        occupies_pe=True,
    )


def CASerialization(
    setup_cycles: int = 8,
    cycles_per_word: int = 1,
) -> SerializationModel:
    """Hardware communication assist per [13]: streams one word per cycle
    after a short configuration, and runs concurrently with the PE."""
    return SerializationModel(
        name="communication-assist",
        setup_cycles=setup_cycles,
        cycles_per_word=cycles_per_word,
        deserialize_setup_cycles=setup_cycles,
        deserialize_cycles_per_word=cycles_per_word,
        occupies_pe=False,
    )
