"""Command-line interface: ``python -m repro <command>``.

Commands mirror the tool invocations of the original flow:

* ``analyze <graph.xml>`` -- SDF3-style analysis of a graph file:
  repetition vector, liveness, throughput (the graph must be bounded,
  e.g. carry buffer back-edges);
* ``demo [sequence] [--tiles N] [--interconnect fsl|noc]`` -- run the
  MJPEG case study end to end and print the Fig. 6-style numbers plus
  Table 1;
* ``dse [sequence] [--max-tiles N]`` -- explore the template design
  space for the MJPEG decoder and print the Pareto table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.arch import architecture_from_template
from repro.exceptions import ReproError
from repro.sdf import (
    analyze_throughput,
    is_deadlock_free,
    repetition_vector,
)
from repro.sdf.io_sdf3 import load_graph


def _cmd_analyze(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    print(f"graph {graph.name!r}: {len(graph)} actors, "
          f"{len(graph.edges)} edges")
    q = repetition_vector(graph)
    print("repetition vector:")
    for name, count in sorted(q.items()):
        print(f"  {name}: {count}")
    live = is_deadlock_free(graph)
    print(f"deadlock-free: {'yes' if live else 'NO'}")
    if live:
        result = analyze_throughput(graph)
        print(
            f"throughput: {result.throughput} iterations/cycle "
            f"({result.per_mega_cycle():.4f} per Mcycle; period "
            f"{result.period} cycles)"
        )
    return 0


def _load_case_study(sequence: str, quality: Optional[int] = None):
    from repro.mjpeg import (
        build_mjpeg_application,
        encode_sequence,
        synthetic_sequence,
        test_set_sequences,
    )

    if sequence == "synthetic":
        frames = synthetic_sequence(n_frames=2)
        quality = quality or 98
    else:
        sequences = test_set_sequences(n_frames=2)
        if sequence not in sequences:
            raise ReproError(
                f"unknown sequence {sequence!r}; pick from "
                f"{sorted(sequences) + ['synthetic']}"
            )
        frames = sequences[sequence]
        quality = quality or 75
    encoded = encode_sequence(frames, quality=quality, h=4, v=2)
    return build_mjpeg_application(encoded)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.flow import DesignFlow

    app = _load_case_study(args.sequence)
    arch = architecture_from_template(args.tiles, args.interconnect)
    flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
    result = flow.run(iterations=args.iterations)
    print(result.summary())
    if args.output:
        root = result.project.write_to(args.output)
        print(f"\nproject written to {root}")
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.flow import explore_design_space

    app = _load_case_study(args.sequence)
    result = explore_design_space(
        app,
        tile_counts=tuple(range(1, args.max_tiles + 1)),
        interconnects=("fsl", "noc"),
        fixed={"VLD": "tile0"},
    )
    print(result.as_table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automated flow to map throughput-constrained applications "
            "to a MPSoC (Jordans et al., PPES 2011 -- reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze an SDF3-style XML graph"
    )
    analyze.add_argument("graph", help="path to the graph XML file")
    analyze.set_defaults(handler=_cmd_analyze)

    demo = commands.add_parser(
        "demo", help="run the MJPEG case study end to end"
    )
    demo.add_argument("sequence", nargs="?", default="gradient")
    demo.add_argument("--tiles", type=int, default=5)
    demo.add_argument(
        "--interconnect", choices=("fsl", "noc"), default="fsl"
    )
    demo.add_argument("--iterations", type=int, default=16)
    demo.add_argument(
        "--output", help="write the generated project under this directory"
    )
    demo.set_defaults(handler=_cmd_demo)

    dse = commands.add_parser(
        "dse", help="explore the template design space for the case study"
    )
    dse.add_argument("sequence", nargs="?", default="gradient")
    dse.add_argument("--max-tiles", type=int, default=5)
    dse.set_defaults(handler=_cmd_dse)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
