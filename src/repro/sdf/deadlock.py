"""Deadlock-freedom analysis.

A consistent SDF graph is deadlock-free iff a single complete iteration can
execute from the initial token distribution [Lee & Messerschmitt 1987].  The
check below symbolically executes one iteration with plain token counting
(timing is irrelevant for liveness) and reports which actors starve when the
graph deadlocks, which makes mapping failures actionable.

The execution is worklist-driven over integer-indexed adjacency: firing an
actor only re-examines the consumers of the edges it produced on, instead
of rescanning the whole graph per pass.  Greedy order is safe -- firing a
ready actor can never disable another actor in SDF -- so the final token
distribution and remaining-firing counts are order-independent (the check
is confluent).  This matters because the buffer-sizing loop calls
:func:`is_deadlock_free` once per candidate distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def _execute_one_iteration(
    graph: SDFGraph,
) -> Tuple[bool, Dict[str, int], Dict[str, int]]:
    """Try to fire each actor ``q[a]`` times; untimed, greedy, worklist.

    Returns (completed, remaining_firings, final_tokens).
    """
    q = repetition_vector(graph)
    actors = graph.actors
    edges = graph.edges
    names = [a.name for a in actors]
    actor_index = {name: i for i, name in enumerate(names)}
    edge_index = {e.name: i for i, e in enumerate(edges)}

    tokens: List[int] = [e.initial_tokens for e in edges]
    remaining: List[int] = [q[name] for name in names]
    in_rates: List[List[Tuple[int, int]]] = [
        [(edge_index[e.name], e.consumption) for e in graph.in_edges(name)]
        for name in names
    ]
    # (edge index, production, consumer index) per out-edge: producing on
    # an edge re-examines exactly its consumer.
    out_rates: List[List[Tuple[int, int, int]]] = [
        [(edge_index[e.name], e.production, actor_index[e.dst])
         for e in graph.out_edges(name)]
        for name in names
    ]

    n = len(actors)
    stack: List[int] = [i for i in range(n) if remaining[i] > 0]
    on_stack: List[bool] = [remaining[i] > 0 for i in range(n)]
    while stack:
        idx = stack.pop()
        on_stack[idx] = False
        rates = in_rates[idx]
        while remaining[idx] > 0 and all(
            tokens[e] >= c for e, c in rates
        ):
            for e, c in rates:
                tokens[e] -= c
            for e, p, dst in out_rates[idx]:
                tokens[e] += p
                if remaining[dst] > 0 and not on_stack[dst]:
                    on_stack[dst] = True
                    stack.append(dst)
            remaining[idx] -= 1

    completed = all(v == 0 for v in remaining)
    return (
        completed,
        {name: remaining[i] for i, name in enumerate(names)},
        {e.name: tokens[i] for i, e in enumerate(edges)},
    )


def is_deadlock_free(graph: SDFGraph) -> bool:
    """True when one full iteration can execute from the initial state."""
    completed, _remaining, _tokens = _execute_one_iteration(graph)
    return completed


def deadlock_report(graph: SDFGraph) -> Optional[str]:
    """Human-readable description of a deadlock, or None when live.

    Lists the starving actors and, per actor, the input edges lacking
    tokens -- the usual culprits are missing initial tokens on a cycle or an
    overly small buffer back-edge.
    """
    completed, remaining, tokens = _execute_one_iteration(graph)
    if completed:
        return None
    lines: List[str] = [f"graph {graph.name!r} deadlocks; starving actors:"]
    for name, left in sorted(remaining.items()):
        if left == 0:
            continue
        blocking = [
            f"{e.name} (has {tokens[e.name]}, needs {e.consumption})"
            for e in graph.in_edges(name)
            if tokens[e.name] < e.consumption
        ]
        lines.append(
            f"  {name}: {left} firing(s) left, blocked on "
            + (", ".join(blocking) if blocking else "<nothing?>")
        )
    return "\n".join(lines)
