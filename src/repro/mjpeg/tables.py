"""JPEG coding tables: zig-zag scan, quantization, Huffman codes.

Quantization tables are the ISO/IEC 10918-1 Annex K examples with the usual
linear quality scaling.  Huffman tables are built canonically from the
Annex K BITS/HUFFVAL specifications for luminance DC and AC; this codec
uses the luminance pair for all components (a documented simplification --
the decode path exercised by the case study is identical).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import BitstreamError

#: Zig-zag scan order: index = zigzag position, value = row-major position.
ZIGZAG: Tuple[int, ...] = (
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
)

#: Inverse permutation: row-major position -> zig-zag position.
INVERSE_ZIGZAG: Tuple[int, ...] = tuple(
    ZIGZAG.index(i) for i in range(64)
)

#: Annex K luminance quantization table (row-major).
BASE_LUMA_QUANT = np.array(
    [
        16, 11, 10, 16, 24, 40, 51, 61,
        12, 12, 14, 19, 26, 58, 60, 55,
        14, 13, 16, 24, 40, 57, 69, 56,
        14, 17, 22, 29, 51, 87, 80, 62,
        18, 22, 37, 56, 68, 109, 103, 77,
        24, 35, 55, 64, 81, 104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101,
        72, 92, 95, 98, 112, 100, 103, 99,
    ],
    dtype=np.int32,
).reshape(8, 8)

#: Annex K chrominance quantization table (row-major).
BASE_CHROMA_QUANT = np.array(
    [
        17, 18, 24, 47, 99, 99, 99, 99,
        18, 21, 26, 66, 99, 99, 99, 99,
        24, 26, 56, 99, 99, 99, 99, 99,
        47, 66, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
    ],
    dtype=np.int32,
).reshape(8, 8)


def scaled_quant_table(base: np.ndarray, quality: int) -> np.ndarray:
    """IJG-style linear quality scaling (quality in 1..100)."""
    if not 1 <= quality <= 100:
        raise BitstreamError(f"quality must be in 1..100, got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    table = (base * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int32)


# ---------------------------------------------------------------------------
# Huffman tables (Annex K, luminance)
# ---------------------------------------------------------------------------
#: BITS[i] = number of codes of length i+1; HUFFVAL = symbols in code order.
DC_BITS = (0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0)
DC_HUFFVAL = tuple(range(12))

AC_BITS = (0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D)
AC_HUFFVAL = (
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
    0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
    0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
    0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
    0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
    0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
    0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
)

#: AC symbol meaning: high nibble = run of zeros, low nibble = size class.
ZRL = 0xF0  # sixteen zeros
EOB = 0x00  # end of block


class HuffmanTable:
    """A canonical Huffman code: symbol <-> (code, length)."""

    def __init__(self, bits: Tuple[int, ...], huffval: Tuple[int, ...]):
        if len(bits) != 16:
            raise BitstreamError("BITS must have 16 entries")
        if sum(bits) != len(huffval):
            raise BitstreamError(
                f"BITS announces {sum(bits)} codes but HUFFVAL has "
                f"{len(huffval)}"
            )
        self.encode_map: Dict[int, Tuple[int, int]] = {}
        #: (length, code) -> symbol, for decoding
        self.decode_map: Dict[Tuple[int, int], int] = {}
        self.max_length = 0
        code = 0
        index = 0
        for length_minus_1, count in enumerate(bits):
            length = length_minus_1 + 1
            for _ in range(count):
                symbol = huffval[index]
                self.encode_map[symbol] = (code, length)
                self.decode_map[(length, code)] = symbol
                code += 1
                index += 1
                self.max_length = length
            code <<= 1

    def encode(self, symbol: int) -> Tuple[int, int]:
        """(code, bit length) of a symbol."""
        try:
            return self.encode_map[symbol]
        except KeyError:
            raise BitstreamError(
                f"symbol {symbol:#x} not in Huffman table"
            ) from None


DC_TABLE = HuffmanTable(DC_BITS, DC_HUFFVAL)
AC_TABLE = HuffmanTable(AC_BITS, AC_HUFFVAL)


def magnitude_category(value: int) -> int:
    """JPEG size class: number of bits to represent |value|."""
    magnitude = abs(value)
    category = 0
    while magnitude:
        magnitude >>= 1
        category += 1
    return category


def encode_magnitude(value: int, category: int) -> int:
    """JPEG amplitude encoding: negatives use one's-complement form."""
    if value >= 0:
        return value
    return value + (1 << category) - 1


def decode_magnitude(bits: int, category: int) -> int:
    """Inverse of :func:`encode_magnitude`."""
    if category == 0:
        return 0
    if bits < (1 << (category - 1)):
        return bits - (1 << category) + 1
    return bits
