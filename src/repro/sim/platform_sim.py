"""The platform simulator.

:class:`PlatformSimulator` takes the application model, the mapping (via its
bound graph) and runs the system functionally:

* token *values* travel along the application's explicit channels (through
  the serialization/deserialization chain of inter-tile channels, which
  preserves FIFO order end to end);
* each application-actor firing calls the actor's functional implementation
  with the consumed values and takes the returned cycle count (plus the
  tile scheduler's dispatch overhead) as its duration;
* communication actors (serialization, link traversal) keep their
  model-determined times -- that hardware is data-independent;
* static-order schedules and all buffer credits are enforced by the
  underlying :class:`~repro.sdf.simulation.SelfTimedSimulator`.

The measured throughput is the long-term average of graph iterations per
clock cycle, sampled after a configurable warm-up, exactly matching the
paper's definition (Section 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Deque, Dict, List, Optional, Tuple

from repro.appmodel.implementation import FiringContext, FiringOutput
from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.exceptions import SimulationError
from repro.mapping.bound_graph import BoundGraph
from repro.mapping.spec import Mapping
from repro.sdf.engine import build_simulator
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import SelfTimedSimulator


@dataclass(frozen=True)
class MeasuredThroughput:
    """Outcome of a measurement run.

    ``throughput`` is iterations per cycle over the measurement window
    (after warm-up); ``iterations`` and ``cycles`` describe that window.
    """

    throughput: Fraction
    iterations: int
    cycles: int
    warmup_iterations: int

    def per_mega_cycle(self) -> float:
        """Iterations per 10^6 cycles (Fig. 6's unit)."""
        return float(self.throughput * 1_000_000)


@dataclass
class TrafficStats:
    """Bytes that crossed the interconnect, per original channel name."""

    bytes_by_channel: Dict[str, int]

    def total_bytes(self) -> int:
        return sum(self.bytes_by_channel.values())

    def share_of(self, *channels: str) -> float:
        """Fraction of total traffic carried by the named channels."""
        total = self.total_bytes()
        if total == 0:
            return 0.0
        return sum(self.bytes_by_channel.get(c, 0) for c in channels) / total


class PlatformSimulator:
    """Executes a mapped application functionally, with real timings."""

    def __init__(
        self,
        app: ApplicationModel,
        arch: ArchitectureModel,
        mapping: Mapping,
        bound: BoundGraph,
        record_trace: bool = False,
    ) -> None:
        app.validate()
        if not app.is_functional():
            raise SimulationError(
                f"application {app.name!r} has no functional implementations;"
                " the platform simulator runs real actor code"
            )
        self.app = app
        self.arch = arch
        self.mapping = mapping
        self.bound = bound
        self.record_trace = record_trace
        self.q = repetition_vector(app.graph)
        self.reference = bound.app_actors[0]

        self._impl_of = dict(mapping.implementations)
        self._dispatch: Dict[str, int] = {}
        for actor, tile_name in mapping.actor_binding.items():
            tile = arch.tile(tile_name)
            self._dispatch[actor] = (
                tile.processor.context_switch_cycles if tile.processor else 0
            )

        # Edge-name translation: the consumer of an inter-tile channel reads
        # from `<edge>__dst`, the producer writes to `<edge>__src`.
        self._consume_edge: Dict[str, str] = {}  # bound edge -> original
        self._produce_edge: Dict[str, str] = {}
        self._s1_of_channel: Dict[str, str] = {}  # s1 actor -> original edge
        self._d2_of_channel: Dict[str, str] = {}
        for edge in app.graph.explicit_edges():
            names = bound.comm_names.get(edge.name)
            if names is None:  # intra-tile channel, name unchanged
                self._consume_edge[edge.name] = edge.name
                self._produce_edge[edge.name] = edge.name
            else:
                self._consume_edge[names.destination_edge] = edge.name
                self._produce_edge[names.source_edge] = edge.name
                self._s1_of_channel[names.s1] = edge.name
                self._d2_of_channel[names.d2] = edge.name

        # Direct lookups for the per-firing hooks.
        self._s1_source_edge: Dict[str, str] = {}
        self._d2_dst_edge: Dict[str, str] = {}
        for edge in app.graph.explicit_edges():
            names = bound.comm_names.get(edge.name)
            if names is not None:
                self._s1_source_edge[names.s1] = names.source_edge
                self._d2_dst_edge[names.d2] = names.destination_edge

        self._values: Dict[str, Deque[object]] = {}
        self._in_transit: Dict[str, Deque[object]] = {}
        self._pending_outputs: Dict[str, Deque[Dict[str, List[object]]]] = {}
        self._states: Dict[str, Dict[str, object]] = {}
        self._firing_cycles: Dict[str, List[int]] = {}
        self._tokens_delivered: Dict[str, int] = {}
        self._sim: Optional[SelfTimedSimulator] = None
        self.reset()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Fresh platform state: initial token values from init functions."""
        self._values = {
            e: deque()
            for e in list(self._consume_edge) + list(self._produce_edge)
        }
        self._in_transit = {
            edge.name: deque() for edge in self.app.graph.explicit_edges()
        }
        self._pending_outputs = {a: deque() for a in self.bound.app_actors}
        self._states = {a: {} for a in self.bound.app_actors}
        self._firing_cycles = {a: [] for a in self.bound.app_actors}
        self._tokens_delivered = {
            e.name: 0 for e in self.app.graph.explicit_edges()
        }

        # Initial token values: produced by the init functions (Listing 1),
        # pre-loaded into the destination-side buffers by the generated
        # communication-initialisation code (Section 5.2).
        by_consumer_edge: Dict[str, List[object]] = {}
        for actor in self.app.graph:
            impl = self._impl_of[actor.name]
            initial = {}
            if impl.init_function is not None:
                initial = impl.init_function(self._states[actor.name])
            for edge in self.app.graph.out_edges(actor.name):
                if edge.is_self_edge or edge.implicit:
                    continue
                if edge.initial_tokens == 0:
                    continue
                provided = initial.get(edge.name)
                if provided is None or len(provided) != edge.initial_tokens:
                    raise SimulationError(
                        f"init function of {actor.name!r} must provide "
                        f"{edge.initial_tokens} value(s) for edge "
                        f"{edge.name!r}"
                    )
                by_consumer_edge[edge.name] = list(provided)
        for bound_edge, original in self._consume_edge.items():
            for value in by_consumer_edge.get(original, []):
                self._values[bound_edge].append(value)

        self._sim = build_simulator(
            self.bound.graph,
            processor_of=self.bound.processor_of,
            static_order=self.mapping.static_orders,
            execution_time_of=self._execution_time_of,
            on_finish=self._on_finish,
            record_trace=self.record_trace,
        )

    # ------------------------------------------------------------------
    # value transport hooks
    # ------------------------------------------------------------------
    def _execution_time_of(self, actor: str, index: int) -> int:
        # Channel entry: s1 starts serializing a token -> capture its value.
        if actor in self._s1_of_channel:
            original = self._s1_of_channel[actor]
            bound_edge = self._s1_source_edge[actor]
            self._in_transit[original].append(
                self._values[bound_edge].popleft()
            )
            return self.bound.graph.actor(actor).execution_time

        if actor not in self._pending_outputs:
            # Communication/bookkeeping actor: model-determined time.
            return self.bound.graph.actor(actor).execution_time

        # Application actor: consume values, run the implementation.
        impl = self._impl_of[actor]
        context = FiringContext(
            inputs={},
            state=self._states[actor],
            firing_index=index,
        )
        for edge in self.bound.graph.in_edges(actor):
            original = self._consume_edge.get(edge.name)
            if original is None:
                continue
            context.inputs[original] = [
                self._values[edge.name].popleft()
                for _ in range(edge.consumption)
            ]
        output = impl.fire(context)
        if output.cycles > impl.wcet:
            raise SimulationError(
                f"firing {index} of {actor!r} took {output.cycles} cycles, "
                f"above its declared WCET of {impl.wcet}; the throughput "
                "guarantee would be unsound"
            )
        self._check_output_counts(actor, output)
        self._pending_outputs[actor].append(output.outputs)
        self._firing_cycles[actor].append(output.cycles)
        return output.cycles + self._dispatch[actor]

    def _check_output_counts(self, actor: str, output: FiringOutput) -> None:
        for edge in self.app.graph.out_edges(actor):
            if edge.is_self_edge or edge.implicit:
                continue
            produced = output.outputs.get(edge.name)
            count = 0 if produced is None else len(produced)
            if count != edge.production:
                raise SimulationError(
                    f"actor {actor!r} produced {count} token(s) on "
                    f"{edge.name!r}, expected {edge.production}"
                )

    def _on_finish(self, actor: str, index: int) -> None:
        # Channel exit: d2 deposits a reassembled token at the destination.
        if actor in self._d2_of_channel:
            original = self._d2_of_channel[actor]
            bound_edge = self._d2_dst_edge[actor]
            self._values[bound_edge].append(
                self._in_transit[original].popleft()
            )
            self._tokens_delivered[original] += 1
            return
        outputs = self._pending_outputs.get(actor)
        if outputs is None or not outputs:
            return  # communication actor without values
        produced = outputs.popleft()
        for edge in self.app.graph.out_edges(actor):
            if edge.is_self_edge or edge.implicit:
                continue
            values = produced.get(edge.name, [])
            names = self.bound.comm_names.get(edge.name)
            if names is None:
                self._values[edge.name].extend(values)
            else:
                self._values[names.source_edge].extend(values)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run_iterations(self, iterations: int,
                       max_steps: int = 5_000_000) -> int:
        """Execute until ``iterations`` *complete* graph iterations have
        finished; returns the finishing time in cycles.

        An iteration counts as complete when every application actor has
        fired its repetition-vector share -- i.e. the pipeline has actually
        delivered the output, the quantity the paper measures on the FPGA
        (MCUs decoded).  Counting a source actor instead would overestimate
        the rate while the pipeline fills.
        """
        sim = self._sim
        for _ in range(max_steps):
            if self.completed_iterations() >= iterations:
                return sim.now
            if not sim.step():
                raise SimulationError(
                    f"platform deadlocked at t={sim.now} after "
                    f"{self.completed_iterations()} complete iteration(s) "
                    "-- generated system is broken"
                )
        raise SimulationError(
            f"platform did not reach {iterations} iterations within "
            f"{max_steps} simulation steps"
        )

    def measure_throughput(
        self, iterations: int = 50, warmup_iterations: int = 5
    ) -> MeasuredThroughput:
        """Measured long-term average throughput (iterations per cycle).

        Runs ``warmup_iterations`` first (start-up effects excluded, per
        the paper's long-term-average definition), then measures the next
        ``iterations``.
        """
        if iterations < 1:
            raise SimulationError("need at least one measured iteration")
        t0 = self.run_iterations(warmup_iterations)
        t1 = self.run_iterations(warmup_iterations + iterations)
        cycles = t1 - t0
        if cycles <= 0:
            raise SimulationError(
                "measurement window is empty; increase iterations"
            )
        return MeasuredThroughput(
            throughput=Fraction(iterations, cycles),
            iterations=iterations,
            cycles=cycles,
            warmup_iterations=warmup_iterations,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def execution_time_records(self) -> Dict[str, List[int]]:
        """Per-actor list of actual firing cycle counts (dispatch excluded)."""
        return {a: list(c) for a, c in self._firing_cycles.items()}

    def traffic(self) -> TrafficStats:
        """Interconnect traffic so far, in bytes per original channel."""
        bytes_by_channel = {}
        for edge in self.app.graph.explicit_edges():
            names = self.bound.comm_names.get(edge.name)
            if names is None:
                continue
            bytes_by_channel[edge.name] = (
                self._tokens_delivered[edge.name] * edge.token_size
            )
        return TrafficStats(bytes_by_channel=bytes_by_channel)

    def utilization_report(self):
        """Per-resource utilization from the recorded trace (requires
        ``record_trace=True``)."""
        from repro.sim.trace import utilization

        if not self.record_trace:
            raise SimulationError(
                "construct the simulator with record_trace=True to get "
                "utilization reports"
            )
        return utilization(self._sim.trace, self.bound.processor_of)

    @property
    def trace(self):
        """The raw simulation trace (requires ``record_trace=True``)."""
        return self._sim.trace

    @property
    def now(self) -> int:
        return self._sim.now

    def completed_iterations(self) -> int:
        """Complete graph iterations delivered by the whole pipeline."""
        # completed_of is O(1); this runs once per simulation step.
        return min(
            self._sim.completed_of(a) // self.q[a]
            for a in self.bound.app_actors
        )
