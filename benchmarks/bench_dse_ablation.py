"""Ablation: the architecture-template design space for the MJPEG decoder.

Regenerates the "very fast design space exploration" the conclusion
promises (Section 7): every template point (tile count x interconnect)
evaluated by the conservative analysis alone, with the Pareto frontier
over (guaranteed throughput, slices).  Also checks the design choices the
paper motivates:

* adding tiles never lowers guaranteed throughput, with diminishing
  returns once every actor owns a tile;
* FSL and NoC guarantees stay within a few % of each other on this
  compute-bound application (why the paper's Fig. 6a/6b look alike).

The second half exercises the exploration *engine*: a parallel sweep must
produce byte-identical results to the serial one, and a cache-warm
repeated sweep must beat the cold serial baseline by a wide wall-clock
margin (the memoization that makes iterative DSE sessions cheap).
"""

import time

import pytest

from benchmarks.conftest import write_results
from repro.flow.dse import (
    DesignSpace,
    Evaluator,
    ParallelExplorer,
    explore_design_space,
)
from repro.mjpeg import build_mjpeg_application


def test_design_space_ablation(benchmark, workloads):
    app = build_mjpeg_application(workloads["gradient"])

    result = benchmark.pedantic(
        lambda: explore_design_space(
            app,
            tile_counts=(1, 2, 3, 4, 5),
            interconnects=("fsl", "noc"),
            fixed={"VLD": "tile0"},
        ),
        rounds=1,
        iterations=1,
    )

    table = result.as_table()
    path = write_results("ablation_design_space.txt", table)
    print("\n" + table + f"\n-> {path}")

    assert not result.failures
    by_key = {
        (p.tiles, p.interconnect): p.throughput for p in result.points
    }

    # More tiles never hurt the guarantee (FSL series).
    fsl_series = [by_key[(t, "fsl")] for t in (1, 2, 3, 4, 5)]
    assert all(b >= a for a, b in zip(fsl_series, fsl_series[1:]))

    # Diminishing returns: the 4->5 gain is no bigger than 1->2.
    first_gain = fsl_series[1] - fsl_series[0]
    last_gain = fsl_series[4] - fsl_series[3]
    assert last_gain <= first_gain

    # NoC tracks FSL within a few % at every multi-tile point.
    for tiles in (2, 3, 4, 5):
        fsl = by_key[(tiles, "fsl")]
        noc = by_key[(tiles, "noc")]
        assert noc <= fsl
        assert float(noc / fsl) > 0.95

    # The Pareto frontier exists and spans from cheapest to fastest.
    frontier = result.pareto_frontier()
    assert frontier[0].tiles == 1
    assert frontier[-1].throughput == max(p.throughput
                                          for p in result.points)


def test_parallel_and_cached_exploration(benchmark, workloads):
    """The engine ablation: serial cold vs parallel cold vs cache-warm.

    Checks the two contracts the engine makes: ``--jobs 4`` changes wall
    clock, never results; and a repeated sweep is memoized into a
    wall-clock speedup that a designer iterating on constraints feels.
    """
    app = build_mjpeg_application(workloads["gradient"])
    space = DesignSpace(tile_counts=(1, 2, 3, 4, 5),
                        interconnects=("fsl", "noc"))
    fixed = {"VLD": "tile0"}

    start = time.perf_counter()
    serial = ParallelExplorer(
        Evaluator(app, fixed=fixed), jobs=1
    ).explore(space)
    serial_cold = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelExplorer(
        Evaluator(app, fixed=fixed), jobs=4
    ).explore(space)
    parallel_cold = time.perf_counter() - start

    # Identical output regardless of worker count, down to the rendered
    # table bytes.
    assert parallel.points == serial.points
    assert parallel.pareto_frontier() == serial.pareto_frontier()
    assert parallel.as_table() == serial.as_table()

    # The cache-warm repeated sweep (same evaluator, same space).
    warm_evaluator = Evaluator(app, fixed=fixed)
    warm_explorer = ParallelExplorer(warm_evaluator, jobs=1)
    warm_explorer.explore(space)
    analyses_before = warm_evaluator.evaluations

    warm = benchmark.pedantic(
        lambda: warm_explorer.explore(space), rounds=3, iterations=1
    )
    warm_seconds = min(benchmark.stats.stats.data)

    assert warm_evaluator.evaluations == analyses_before  # all hits
    assert warm.points == serial.points
    # The memoized sweep must be dramatically faster than re-analysis;
    # 10x is a loose floor (measured: >1000x).
    assert warm_seconds * 10 < serial_cold

    lines = [
        f"serial cold sweep:    {serial_cold:.3f} s",
        f"parallel cold sweep:  {parallel_cold:.3f} s (jobs=4)",
        f"cache-warm re-sweep:  {warm_seconds * 1000:.2f} ms "
        f"({serial_cold / warm_seconds:.0f}x vs serial cold)",
        f"points evaluated:     {len(serial.points)}",
    ]
    path = write_results("ablation_dse_engine.txt", "\n".join(lines))
    print("\n" + "\n".join(lines) + f"\n-> {path}")
