"""The architecture model: tiles + interconnect (the flow's second input).

The model validates the template rules (unique names, at most one master
per peripheral set, NoC placement covers the tiles) and offers the lookups
the mapping flow needs: which PE types exist, which tiles can host which
implementations, and channel-parameter queries through the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.interconnect import Connection, FSLInterconnect, Interconnect
from repro.arch.noc import SDMNoC
from repro.arch.tile import Tile
from repro.exceptions import ArchitectureError


@dataclass
class ArchitectureModel:
    """A complete platform description.

    ``interconnect`` may be shared by reference; :meth:`fresh` deep-copies
    the allocation state away so mapping attempts do not pollute each other.
    """

    name: str
    tiles: List[Tile] = field(default_factory=list)
    interconnect: Optional[Interconnect] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("architecture needs a name")
        names = [t.name for t in self.tiles]
        if len(set(names)) != len(names):
            raise ArchitectureError(
                f"duplicate tile names in architecture {self.name!r}"
            )
        self._by_name: Dict[str, Tile] = {t.name: t for t in self.tiles}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def tile(self, name: str) -> Tile:
        try:
            return self._by_name[name]
        except KeyError:
            raise ArchitectureError(
                f"unknown tile {name!r} in architecture {self.name!r}"
            ) from None

    def tile_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tiles)

    def processor_tiles(self) -> Tuple[Tile, ...]:
        """Tiles that can run software actors."""
        return tuple(t for t in self.tiles if t.processor is not None)

    def pe_types(self) -> Tuple[str, ...]:
        """Distinct PE type names present in the platform."""
        seen = []
        for tile in self.tiles:
            if tile.processor and tile.processor.name not in seen:
                seen.append(tile.processor.name)
        return tuple(seen)

    def master_tiles(self) -> Tuple[Tile, ...]:
        return tuple(t for t in self.tiles if t.role == "master")

    def validate(self) -> None:
        """Template rules beyond construction-time checks."""
        if not self.tiles:
            raise ArchitectureError(
                f"architecture {self.name!r} has no tiles"
            )
        if self.interconnect is None and len(self.tiles) > 1:
            raise ArchitectureError(
                f"architecture {self.name!r} has {len(self.tiles)} tiles "
                "but no interconnect"
            )
        owned = {}
        for tile in self.tiles:
            for peripheral in tile.peripherals:
                if peripheral.name in owned:
                    raise ArchitectureError(
                        f"peripheral {peripheral.name!r} owned by both "
                        f"{owned[peripheral.name]!r} and {tile.name!r}; "
                        "sharing peripherals breaks predictability "
                        "(Section 4)"
                    )
                owned[peripheral.name] = tile.name
        if isinstance(self.interconnect, SDMNoC):
            for tile in self.tiles:
                self.interconnect.position_of(tile.name)  # raises if absent

    # ------------------------------------------------------------------
    # interconnect helpers
    # ------------------------------------------------------------------
    def connect(self, name: str, src_tile: str, dst_tile: str, **kwargs):
        """Allocate a connection on the interconnect and return its
        channel parameters."""
        if self.interconnect is None:
            raise ArchitectureError(
                f"architecture {self.name!r} has no interconnect"
            )
        self.tile(src_tile)
        self.tile(dst_tile)
        connection = Connection(name=name, src_tile=src_tile,
                                dst_tile=dst_tile)
        return self.interconnect.allocate(connection, **kwargs)

    def reset_interconnect(self) -> None:
        if self.interconnect is not None:
            self.interconnect.release_all()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`).

        Transient interconnect allocations are not part of the payload;
        a decoded platform starts with a clean fabric.
        """
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ArchitectureModel":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "architecture")
        return from_payload(payload)

    def describe(self) -> str:
        parts = [f"architecture {self.name!r}: {len(self.tiles)} tile(s)"]
        for tile in self.tiles:
            extras = []
            if tile.peripherals:
                extras.append(
                    "peripherals=" + ",".join(p.name for p in tile.peripherals)
                )
            if tile.has_ca:
                extras.append("CA")
            suffix = f" ({'; '.join(extras)})" if extras else ""
            pe = tile.pe_type or "hardware IP"
            parts.append(
                f"  {tile.name}: {tile.role} [{pe}], "
                f"{tile.instruction_memory.capacity_bytes // 1024}kB I / "
                f"{tile.data_memory.capacity_bytes // 1024}kB D{suffix}"
            )
        if self.interconnect is not None:
            parts.append(f"  interconnect: {self.interconnect.describe()}")
        return "\n".join(parts)
