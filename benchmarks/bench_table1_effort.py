"""Table 1: designer effort -- timing of the automated flow steps.

The manual steps (top half of Table 1) are the paper's reported human
effort; the automated steps are measured here on the MJPEG case study:

* generating the architecture model   (paper: 1 second)
* mapping the design with SDF3        (paper: 1 minute)
* generating the Xilinx project       (paper: 16 seconds)
* synthesis of the system             (paper: 17 minutes, Xilinx tools)

Shape check: every automated step is orders of magnitude below the manual
effort, and project generation is cheap relative to mapping.  (Absolute
times are not comparable: the paper's synthesis runs the full Xilinx
backend; ours builds the simulator platform.)
"""

import pytest

from benchmarks.conftest import write_results
from repro.arch import architecture_from_template
from repro.flow import DesignFlow
from repro.mamps import generate_platform, synthesize
from repro.mapping import map_application
from repro.mjpeg import build_mjpeg_application


@pytest.fixture(scope="module")
def case_study(workloads):
    encoded = workloads["gradient"]
    app = build_mjpeg_application(encoded)
    return app


def test_table1_generating_architecture(benchmark, case_study):
    """Row: 'Generating architecture model' (paper: 1 s, automated)."""
    arch = benchmark(architecture_from_template, 5, "fsl")
    assert len(arch.tiles) == 5


def test_table1_mapping_sdf3(benchmark, case_study):
    """Row: 'Mapping the design (SDF3)' (paper: 1 min, automated)."""
    app = case_study

    def do_mapping():
        arch = architecture_from_template(5, "fsl")
        return map_application(app, arch, fixed={"VLD": "tile0"})

    result = benchmark.pedantic(do_mapping, rounds=3, iterations=1)
    assert result.guaranteed_throughput > 0


def test_table1_generating_project(benchmark, case_study):
    """Row: 'Generating Xilinx project (MAMPS)' (paper: 16 s, automated)."""
    app = case_study
    arch = architecture_from_template(5, "fsl")
    result = map_application(app, arch, fixed={"VLD": "tile0"})
    project = benchmark(generate_platform, app, arch, result)
    assert "system.mhs" in project.paths()


def test_table1_synthesis(benchmark, case_study):
    """Row: 'Synthesis of the system' (paper: 17 min of Xilinx tools; here
    the construction of the runnable platform simulator)."""
    app = case_study
    arch = architecture_from_template(5, "fsl")
    result = map_application(app, arch, fixed={"VLD": "tile0"})
    simulator = benchmark.pedantic(
        lambda: synthesize(app, arch, result), rounds=3, iterations=1
    )
    assert simulator is not None


def test_table1_report(benchmark, case_study):
    """Regenerate the full Table 1 via the flow driver and archive it."""
    app = case_study
    arch = architecture_from_template(5, "fsl")

    def run_flow():
        return DesignFlow(app, arch, fixed={"VLD": "tile0"}).run(
            measure=False
        )

    result = benchmark.pedantic(run_flow, rounds=1, iterations=1)
    table = result.effort.as_table()
    path = write_results("table1_effort.txt", table)
    print("\n" + table + f"\n-> {path}")

    # Shape: all automated steps complete within seconds (vs. days of
    # manual effort), and architecture generation is the fastest step.
    total = result.effort.total_automated_seconds()
    assert total < 60.0
    arch_time = result.effort.seconds_of("Generating architecture model")
    mapping_time = result.effort.seconds_of("Mapping the design (SDF3)")
    assert arch_time <= mapping_time
