"""SDF3-style XML persistence for SDF graphs.

The paper's flow uses "a common input format for both the mapping and
platform generation tools" (Section 2) to remove the error-prone manual
translation step of CA-MPSoC.  This module provides that interchange format:
an XML dialect closely modelled on SDF3's ``<sdf3type="sdf">`` files, so
graphs round-trip between the mapping side and the generation side (and, for
simple graphs, remain recognizable to people who know the SDF3 schema).

Layout::

    <sdf3 type="sdf" version="1.0">
      <applicationGraph name="g">
        <sdf name="g">
          <actor name="A" type="A"> <port .../> ... </actor>
          <channel name="a2b" srcActor="A" srcPort="p0"
                   dstActor="B" dstPort="p1" initialTokens="0"/>
        </sdf>
        <sdfProperties>
          <actorProperties actor="A">
            <processor type="default" default="true">
              <executionTime time="100"/>
            </processor>
          </actorProperties>
          <channelProperties channel="a2b" tokenSize="4"/>
        </sdfProperties>
      </applicationGraph>
    </sdf3>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Union

from repro.exceptions import GraphError
from repro.sdf.graph import SDFGraph


def graph_to_xml(graph: SDFGraph) -> ET.Element:
    """Serialize ``graph`` into an SDF3-style element tree."""
    root = ET.Element("sdf3", {"type": "sdf", "version": "1.0"})
    app = ET.SubElement(root, "applicationGraph", {"name": graph.name})
    sdf = ET.SubElement(app, "sdf", {"name": graph.name})

    port_counter = 0
    port_names = {}  # (edge, end) -> port name
    actor_elements = {}
    for actor in graph:
        actor_elements[actor.name] = ET.SubElement(
            sdf, "actor", {"name": actor.name, "type": actor.name}
        )

    for edge in graph.edges:
        src_port = f"p{port_counter}"
        dst_port = f"p{port_counter + 1}"
        port_counter += 2
        port_names[(edge.name, "src")] = src_port
        port_names[(edge.name, "dst")] = dst_port
        ET.SubElement(
            actor_elements[edge.src],
            "port",
            {"name": src_port, "type": "out", "rate": str(edge.production)},
        )
        ET.SubElement(
            actor_elements[edge.dst],
            "port",
            {"name": dst_port, "type": "in", "rate": str(edge.consumption)},
        )

    for edge in graph.edges:
        attrs = {
            "name": edge.name,
            "srcActor": edge.src,
            "srcPort": port_names[(edge.name, "src")],
            "dstActor": edge.dst,
            "dstPort": port_names[(edge.name, "dst")],
        }
        if edge.initial_tokens:
            attrs["initialTokens"] = str(edge.initial_tokens)
        if edge.implicit:
            attrs["implicit"] = "true"
        ET.SubElement(sdf, "channel", attrs)

    properties = ET.SubElement(app, "sdfProperties")
    for actor in graph:
        actor_props = ET.SubElement(
            properties, "actorProperties", {"actor": actor.name}
        )
        processor = ET.SubElement(
            actor_props, "processor", {"type": "default", "default": "true"}
        )
        ET.SubElement(
            processor, "executionTime", {"time": str(actor.execution_time)}
        )
    for edge in graph.edges:
        if edge.token_size:
            ET.SubElement(
                properties,
                "channelProperties",
                {"channel": edge.name, "tokenSize": str(edge.token_size)},
            )
    return root


def graph_from_xml(root: ET.Element) -> SDFGraph:
    """Parse an SDF3-style element tree into an :class:`SDFGraph`."""
    if root.tag != "sdf3":
        raise GraphError(f"expected <sdf3> root element, got <{root.tag}>")
    app = root.find("applicationGraph")
    if app is None:
        raise GraphError("missing <applicationGraph>")
    sdf = app.find("sdf")
    if sdf is None:
        raise GraphError("missing <sdf>")

    graph = SDFGraph(app.get("name", sdf.get("name", "sdf")))

    # Ports carry the rates; index them per actor.
    port_rates = {}  # (actor, port) -> rate
    for actor_el in sdf.findall("actor"):
        actor_name = actor_el.get("name")
        if actor_name is None:
            raise GraphError("<actor> without name")
        graph.add_actor(actor_name)
        for port_el in actor_el.findall("port"):
            port_name = port_el.get("name")
            rate = int(port_el.get("rate", "1"))
            port_rates[(actor_name, port_name)] = rate

    for channel_el in sdf.findall("channel"):
        name = channel_el.get("name")
        src = channel_el.get("srcActor")
        dst = channel_el.get("dstActor")
        if name is None or src is None or dst is None:
            raise GraphError("<channel> missing name/srcActor/dstActor")
        production = port_rates.get((src, channel_el.get("srcPort")), 1)
        consumption = port_rates.get((dst, channel_el.get("dstPort")), 1)
        graph.add_edge(
            name,
            src,
            dst,
            production=production,
            consumption=consumption,
            initial_tokens=int(channel_el.get("initialTokens", "0")),
            implicit=channel_el.get("implicit") == "true",
        )

    properties = app.find("sdfProperties")
    if properties is not None:
        for actor_props in properties.findall("actorProperties"):
            actor_name = actor_props.get("actor")
            for processor in actor_props.findall("processor"):
                exec_el = processor.find("executionTime")
                if exec_el is not None and actor_name in graph:
                    graph.actor(actor_name).execution_time = int(
                        exec_el.get("time", "0")
                    )
        for channel_props in properties.findall("channelProperties"):
            channel_name = channel_props.get("channel")
            if channel_name and graph.has_edge(channel_name):
                graph.edge(channel_name).token_size = int(
                    channel_props.get("tokenSize", "0")
                )
    return graph


def save_graph(graph: SDFGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as SDF3-style XML."""
    tree = ET.ElementTree(graph_to_xml(graph))
    try:
        ET.indent(tree)  # Python >= 3.9
    except AttributeError:  # pragma: no cover
        pass
    tree.write(str(path), encoding="unicode", xml_declaration=True)


def load_graph(path: Union[str, Path]) -> SDFGraph:
    """Read an SDF3-style XML file into an :class:`SDFGraph`."""
    tree = ET.parse(str(path))
    return graph_from_xml(tree.getroot())
