"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the failing subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed SDF graphs (unknown actors, duplicate names...)."""


class InconsistentGraphError(GraphError):
    """Raised when an SDF graph has no non-trivial repetition vector.

    An inconsistent graph cannot execute periodically with bounded memory,
    so none of the mapping or analysis algorithms accept one.
    """


class DeadlockError(ReproError):
    """Raised when an SDF graph (or a mapped graph) deadlocks."""


class ArchitectureError(ReproError):
    """Raised for malformed or infeasible architecture descriptions."""

class RoutingError(ArchitectureError):
    """Raised when a channel cannot be routed on the interconnect."""


class MappingError(ReproError):
    """Raised when the mapping flow cannot produce a valid binding."""


class ThroughputConstraintError(MappingError):
    """Raised when no mapping meets the requested throughput constraint."""


class PowerError(ReproError):
    """Raised by the power/energy model (:mod:`repro.power`) for unknown
    technology nodes, invalid calibration parameters, or estimates that
    are undefined for the given result (e.g. zero-throughput mappings)."""


class GenerationError(ReproError):
    """Raised when MAMPS platform generation fails."""


class SimulationError(ReproError):
    """Raised for platform-simulator inconsistencies (e.g. buffer overflow
    in a supposedly deadlock-free design, which indicates a modelling bug)."""


class BitstreamError(ReproError):
    """Raised by the MJPEG codec for malformed bitstreams."""


class PlatformError(ReproError):
    """Raised by the run-time platform manager (:mod:`repro.runtime`)."""


class AdmissionError(PlatformError):
    """Raised when an application cannot be admitted onto the residual
    platform (no stored operating point fits and the incremental
    fallback fails, or the request targets a different architecture).
    Admission is all-or-nothing: a rejected application never degrades
    the ones already running."""


class UnknownAppError(PlatformError):
    """Raised for operations naming an application id the platform is
    not running."""
