"""The five MJPEG actors of Fig. 5 with Microblaze-flavoured cost models.

Each actor is a functional implementation (real decode work on real token
values) paired with a cycle-cost model whose terms mirror what dominates on
a 100 MHz soft core without hardware divider/floating point:

* **VLD** -- bit-serial Huffman decoding: cost per consumed *bit* plus a
  per-coefficient store, plus per-block and per-MCU bookkeeping.
* **IQZZ** -- dequantization + de-zig-zag: cost per nonzero coefficient.
* **IDCT** -- coefficient-driven software IDCT: a fixed two-pass base plus
  a per-nonzero term (sparse blocks shortcut), tiny cost for padding
  blocks.
* **CC** -- color conversion: cost per pixel of the MCU.
* **Raster** -- framebuffer writes: cost per pixel.

WCETs are *scenario-based* (paper [4]: "Automatic scenario detection for
improved WCET estimation"): the bound is computed for the stream's actual
sampling format, e.g. 6 real + 4 padding blocks per MCU for 4:2:0 -- but
per-firing WCETs of IQZZ/IDCT must still assume a full block, because the
fixed SDF rates cannot distinguish padding firings.  That residual
pessimism is the "modeling overhead" Section 6.3 discusses.

Tokens:

* ``BlockToken`` -- zig-zag quantized levels (VLD -> IQZZ), natural-order
  dequantized coefficients (IQZZ -> IDCT) or spatial samples
  (IDCT -> CC); padding tokens carry ``valid=False``.
* ``HeaderToken`` -- frame geometry forwarded on subHeader1/subHeader2.
* CC -> Raster carries the MCU's RGB pixels plus its frame position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.appmodel.implementation import FiringContext, FiringOutput
from repro.exceptions import BitstreamError
from repro.mjpeg.bitstream import BitReader
from repro.mjpeg.colors import upsample_nearest, ycbcr_to_rgb
from repro.mjpeg.dct import dequantize, idct_samples
from repro.mjpeg.encoder import (
    EncodedSequence,
    HEADER_BYTES,
    MAX_BLOCKS_PER_MCU,
    parse_header,
)
from repro.mjpeg.entropy import decode_block
from repro.mjpeg.tables import (
    BASE_CHROMA_QUANT,
    BASE_LUMA_QUANT,
    INVERSE_ZIGZAG,
    scaled_quant_table,
)

#: Worst-case bits to entropy-code one block: DC (9-bit code + 11
#: magnitude bits) plus 63 AC coefficients at (16-bit code + 10 magnitude
#: bits) each.
WORST_CASE_BLOCK_BITS = (9 + 11) + 63 * (16 + 10)


@dataclass(frozen=True)
class BlockToken:
    """One 8x8 block travelling between the pipeline stages."""

    component: str  # "y", "cb", "cr" or "pad"
    valid: bool
    payload: Optional[np.ndarray]  # stage-dependent content
    nonzero: int = 0  # nonzero coefficient count (cost-model input)


@dataclass(frozen=True)
class HeaderToken:
    """Frame geometry forwarded on the subHeader channels."""

    width: int
    height: int
    h: int
    v: int
    color: bool


@dataclass(frozen=True)
class PixelToken:
    """An MCU of RGB pixels plus its position in the frame."""

    pixels: np.ndarray  # (8v, 8h, 3) uint8
    mcu_x: int
    mcu_y: int
    frame_index: int


@dataclass(frozen=True)
class MJPEGCostModel:
    """Cycle-cost constants (see module docstring for rationale)."""

    vld_base: int = 9_000
    vld_per_block: int = 2_600
    vld_per_bit: int = 26
    vld_per_coefficient: int = 110
    vld_padding_block: int = 300

    iqzz_base: int = 1_800
    iqzz_per_nonzero: int = 140
    iqzz_padding: int = 400

    idct_base: int = 90_000
    idct_per_nonzero: int = 5_200
    idct_padding: int = 500

    cc_base: int = 15_000
    cc_per_pixel: int = 95

    raster_base: int = 8_000
    raster_per_pixel: int = 28

    # ------------------------------------------------------------------
    # scenario-based WCETs (per firing)
    # ------------------------------------------------------------------
    def vld_wcet(self, real_blocks: int) -> int:
        """Worst case: every real block fully coded at maximal bit cost."""
        padding = MAX_BLOCKS_PER_MCU - real_blocks
        return (
            self.vld_base
            + real_blocks
            * (
                self.vld_per_block
                + WORST_CASE_BLOCK_BITS * self.vld_per_bit
                + 64 * self.vld_per_coefficient
            )
            + padding * self.vld_padding_block
        )

    def iqzz_wcet(self) -> int:
        """One full block: all 64 coefficients nonzero."""
        return self.iqzz_base + 64 * self.iqzz_per_nonzero

    def idct_wcet(self) -> int:
        return self.idct_base + 64 * self.idct_per_nonzero

    def cc_wcet(self, mcu_pixels: int) -> int:
        return self.cc_base + mcu_pixels * self.cc_per_pixel

    def raster_wcet(self, mcu_pixels: int) -> int:
        return self.raster_base + mcu_pixels * self.raster_per_pixel


@dataclass
class MJPEGActorSet:
    """The actor functions for one encoded sequence + cost model."""

    encoded: EncodedSequence
    cost: MJPEGCostModel = field(default_factory=MJPEGCostModel)

    def __post_init__(self) -> None:
        self.info = parse_header(self.encoded.data)
        self._luma_table = scaled_quant_table(
            BASE_LUMA_QUANT, self.info.quality
        )
        self._chroma_table = scaled_quant_table(
            BASE_CHROMA_QUANT, self.info.quality
        )
        self._unzigzag = np.array(INVERSE_ZIGZAG)
        #: component of each real block within one MCU, in stream order
        order = ["y"] * (self.info.h * self.info.v)
        if self.info.color:
            order += ["cb", "cr"]
        self.block_order: Tuple[str, ...] = tuple(order)

    # ------------------------------------------------------------------
    # VLD
    # ------------------------------------------------------------------
    def vld_init(self, state: Dict[str, object]) -> Dict[str, List[object]]:
        state["reader"] = BitReader(self.encoded.data[HEADER_BYTES:])
        state["predictors"] = {"y": 0, "cb": 0, "cr": 0}
        state["mcu_in_frame"] = 0
        state["frame_index"] = 0
        return {}

    def vld(self, ctx: FiringContext) -> FiringOutput:
        """Decode one MCU: up to 10 block tokens + the subheader tokens."""
        info = self.info
        reader: BitReader = ctx.state["reader"]
        predictors: Dict[str, int] = ctx.state["predictors"]

        bits_before = reader.bits_consumed
        blocks: List[BlockToken] = []
        coefficients = 0
        for component in self.block_order:
            levels, new_dc, count = decode_block(
                reader, predictors[component]
            )
            predictors[component] = new_dc
            nonzero = int(np.count_nonzero(levels))
            blocks.append(
                BlockToken(
                    component=component,
                    valid=True,
                    payload=levels,
                    nonzero=nonzero,
                )
            )
            coefficients += count
        while len(blocks) < MAX_BLOCKS_PER_MCU:
            blocks.append(
                BlockToken(component="pad", valid=False, payload=None)
            )

        bits = reader.bits_consumed - bits_before
        real = len(self.block_order)
        cycles = (
            self.cost.vld_base
            + real * self.cost.vld_per_block
            + bits * self.cost.vld_per_bit
            + coefficients * self.cost.vld_per_coefficient
            + (MAX_BLOCKS_PER_MCU - real) * self.cost.vld_padding_block
        )

        # Advance stream position; wrap at the end of the file (the
        # decoder loops the sequence to expose long-term throughput).
        ctx.state["mcu_in_frame"] += 1
        if ctx.state["mcu_in_frame"] >= info.mcus_per_frame:
            ctx.state["mcu_in_frame"] = 0
            ctx.state["frame_index"] += 1
            reader.align()
            predictors.update({"y": 0, "cb": 0, "cr": 0})
            if ctx.state["frame_index"] >= info.n_frames:
                ctx.state["frame_index"] = 0
                reader.seek_bits(0)

        header = HeaderToken(
            width=info.width, height=info.height,
            h=info.h, v=info.v, color=info.color,
        )
        return FiringOutput(
            outputs={
                "vld2iqzz": blocks,
                "subHeader1": [header],
                "subHeader2": [header],
            },
            cycles=cycles,
        )

    # ------------------------------------------------------------------
    # IQZZ
    # ------------------------------------------------------------------
    def iqzz(self, ctx: FiringContext) -> FiringOutput:
        token: BlockToken = ctx.single("vld2iqzz")
        if not token.valid:
            return FiringOutput(
                outputs={"iqzz2idct": [token]},
                cycles=self.cost.iqzz_padding,
            )
        table = (
            self._luma_table if token.component == "y"
            else self._chroma_table
        )
        natural = token.payload[self._unzigzag].reshape(8, 8)
        coefficients = dequantize(natural, table)
        out = BlockToken(
            component=token.component,
            valid=True,
            payload=coefficients.astype(np.int16),
            nonzero=token.nonzero,
        )
        cycles = (
            self.cost.iqzz_base
            + token.nonzero * self.cost.iqzz_per_nonzero
        )
        return FiringOutput(outputs={"iqzz2idct": [out]}, cycles=cycles)

    # ------------------------------------------------------------------
    # IDCT
    # ------------------------------------------------------------------
    def idct(self, ctx: FiringContext) -> FiringOutput:
        token: BlockToken = ctx.single("iqzz2idct")
        if not token.valid:
            return FiringOutput(
                outputs={"idct2cc": [token]},
                cycles=self.cost.idct_padding,
            )
        samples = idct_samples(token.payload.astype(np.int32))
        out = BlockToken(
            component=token.component,
            valid=True,
            payload=samples,
            nonzero=token.nonzero,
        )
        cycles = (
            self.cost.idct_base
            + token.nonzero * self.cost.idct_per_nonzero
        )
        return FiringOutput(outputs={"idct2cc": [out]}, cycles=cycles)

    # ------------------------------------------------------------------
    # CC
    # ------------------------------------------------------------------
    def cc(self, ctx: FiringContext) -> FiringOutput:
        header: HeaderToken = ctx.single("subHeader1")
        blocks: List[BlockToken] = ctx.inputs["idct2cc"]
        mcu_index = ctx.state.get("mcu_index", 0)
        info = self.info
        mcu_x = mcu_index % info.mcus_x
        mcu_y = (mcu_index // info.mcus_x) % info.mcus_y
        frame_index = mcu_index // info.mcus_per_frame

        h, v = header.h, header.v
        luma = np.zeros((8 * v, 8 * h), dtype=np.uint8)
        position = 0
        for by in range(v):
            for bx in range(h):
                luma[8 * by:8 * by + 8, 8 * bx:8 * bx + 8] = (
                    blocks[position].payload
                )
                position += 1
        if header.color:
            cb = upsample_nearest(blocks[position].payload, v, h)
            cr = upsample_nearest(blocks[position + 1].payload, v, h)
            ycbcr = np.stack([luma, cb, cr], axis=-1)
            pixels = ycbcr_to_rgb(ycbcr)
        else:
            pixels = np.stack([luma, luma, luma], axis=-1)

        ctx.state["mcu_index"] = mcu_index + 1
        n_pixels = pixels.shape[0] * pixels.shape[1]
        cycles = self.cost.cc_base + n_pixels * self.cost.cc_per_pixel
        token = PixelToken(
            pixels=pixels, mcu_x=mcu_x, mcu_y=mcu_y,
            frame_index=frame_index,
        )
        return FiringOutput(outputs={"cc2raster": [token]}, cycles=cycles)

    # ------------------------------------------------------------------
    # Raster
    # ------------------------------------------------------------------
    def raster(self, ctx: FiringContext) -> FiringOutput:
        header: HeaderToken = ctx.single("subHeader2")
        token: PixelToken = ctx.single("cc2raster")
        framebuffer = ctx.state.get("framebuffer")
        if framebuffer is None:
            framebuffer = np.zeros(
                (header.height, header.width, 3), dtype=np.uint8
            )
            ctx.state["framebuffer"] = framebuffer
            ctx.state["frames"] = []
            ctx.state["mcus_filled"] = 0

        mcu_h = 8 * header.v
        mcu_w = 8 * header.h
        y0 = token.mcu_y * mcu_h
        x0 = token.mcu_x * mcu_w
        framebuffer[y0:y0 + mcu_h, x0:x0 + mcu_w] = token.pixels

        ctx.state["mcus_filled"] += 1
        per_frame = (header.width // mcu_w) * (header.height // mcu_h)
        if ctx.state["mcus_filled"] >= per_frame:
            ctx.state["frames"].append(framebuffer.copy())
            ctx.state["mcus_filled"] = 0

        n_pixels = mcu_h * mcu_w
        cycles = (
            self.cost.raster_base + n_pixels * self.cost.raster_per_pixel
        )
        return FiringOutput(outputs={}, cycles=cycles)
