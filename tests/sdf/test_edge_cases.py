"""Edge-case and stress tests for the SDF core."""

from fractions import Fraction

import pytest

from repro.exceptions import GraphError
from repro.sdf import (
    SDFGraph,
    analyze_throughput,
    is_deadlock_free,
    repetition_vector,
    to_hsdf,
)
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.mcm import hsdf_throughput


class TestSkewedRates:
    def test_highly_skewed_repetition_vector(self):
        g = SDFGraph("skew")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B", production=97, consumption=89)
        q = repetition_vector(g)
        assert q == {"A": 89, "B": 97}

    def test_skewed_chain_throughput(self):
        g = SDFGraph("skew")
        g.add_actor("A", execution_time=3)
        g.add_actor("B", execution_time=5)
        g.add_edge("ab", "A", "B", production=7, consumption=3)
        bounded = add_buffer_edges(g, BufferDistribution({"ab": 9}))
        result = analyze_throughput(bounded, max_iterations=3000)
        # q = {A: 3, B: 7}: B carries 35 cycles of work per iteration.
        assert result.throughput <= Fraction(1, 35)
        assert result.throughput > 0

    def test_hsdf_size_of_skewed_graph(self):
        g = SDFGraph("skew")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B", production=12, consumption=8)
        hsdf = to_hsdf(g)
        q = repetition_vector(g)
        assert len(hsdf) == q["A"] + q["B"]  # 2 + 3


class TestInitialTokenExtremes:
    def test_large_initial_token_pool(self):
        g = SDFGraph("pool")
        g.add_actor("A", execution_time=5)
        g.add_actor("B", execution_time=5)
        g.add_edge("ab", "A", "B", initial_tokens=100)
        g.add_edge("ba", "B", "A", initial_tokens=100)
        result = analyze_throughput(g)
        # Both actors independently cycle-limited: 1 firing per 5 cycles.
        assert result.throughput == Fraction(1, 5)

    def test_one_token_short_of_a_burst_deadlocks(self):
        """9 tokens against a consumption burst of 10, with the producer
        waiting on the consumer: a classic off-by-one deadlock."""
        g = SDFGraph("burst")
        g.add_actor("A", execution_time=2)
        g.add_actor("B", execution_time=2)
        g.add_edge("ab", "A", "B", production=1, consumption=10,
                   initial_tokens=9)
        g.add_edge("ba", "B", "A", production=10, consumption=1)
        assert not is_deadlock_free(g)
        # One credit on the return edge unblocks the whole cycle.
        g2 = SDFGraph("burst2")
        g2.add_actor("A", execution_time=2)
        g2.add_actor("B", execution_time=2)
        g2.add_edge("ab", "A", "B", production=1, consumption=10,
                    initial_tokens=9)
        g2.add_edge("ba", "B", "A", production=10, consumption=1,
                    initial_tokens=1)
        assert is_deadlock_free(g2)
        assert analyze_throughput(g2).throughput > 0


class TestDegenerateShapes:
    def test_two_parallel_edges_between_same_actors(self):
        g = SDFGraph("parallel")
        g.add_actor("A", execution_time=4)
        g.add_actor("B", execution_time=4)
        g.add_edge("fast", "A", "B", initial_tokens=1)
        g.add_edge("slow", "A", "B")
        g.add_edge("back", "B", "A", initial_tokens=2)
        result = analyze_throughput(g)
        assert result.throughput > 0

    def test_actor_with_many_self_edges(self):
        g = SDFGraph("selfy")
        g.add_actor("A", execution_time=7)
        g.add_edge("s1", "A", "A", initial_tokens=1)
        g.add_edge("s2", "A", "A", initial_tokens=3)
        g.add_edge("s3", "A", "A", initial_tokens=2)
        result = analyze_throughput(g)
        assert result.throughput == Fraction(1, 7)

    def test_long_chain_analyzes(self):
        g = SDFGraph("long")
        previous = None
        for i in range(20):
            g.add_actor(f"n{i}", execution_time=3 + (i % 5))
            if previous is not None:
                g.add_edge(f"e{i}", previous, f"n{i}", token_size=4)
            previous = f"n{i}"
        capacities = {e.name: 2 for e in g.explicit_edges()}
        bounded = add_buffer_edges(g, BufferDistribution(capacities))
        result = analyze_throughput(bounded, max_iterations=3000)
        # Bottleneck: the slowest stage (7 cycles).
        assert result.throughput == Fraction(1, 7)

    def test_wide_fanout_analyzes(self):
        g = SDFGraph("fan")
        g.add_actor("S", execution_time=10)
        capacities = {}
        for i in range(8):
            g.add_actor(f"w{i}", execution_time=8)
            g.add_edge(f"e{i}", "S", f"w{i}", token_size=4)
            capacities[f"e{i}"] = 2
        bounded = add_buffer_edges(g, BufferDistribution(capacities))
        result = analyze_throughput(bounded)
        assert result.throughput == Fraction(1, 10)  # source-limited


class TestEngineCrossChecks:
    def test_engines_agree_on_skewed_ring(self):
        g = SDFGraph("xr")
        g.add_actor("A", execution_time=4)
        g.add_actor("B", execution_time=9)
        g.add_edge("ab", "A", "B", production=5, consumption=2)
        g.add_edge("ba", "B", "A", production=2, consumption=5,
                   initial_tokens=20)
        state_space = analyze_throughput(g, max_iterations=3000).throughput
        mcm_based = hsdf_throughput(to_hsdf(g))
        assert state_space == mcm_based

    def test_engines_agree_with_concurrency_caps(self):
        g = SDFGraph("cap")
        g.add_actor("A", execution_time=10, concurrency=3)
        g.add_actor("B", execution_time=5)
        g.add_edge("ab", "A", "B", initial_tokens=0)
        g.add_edge("ba", "B", "A", initial_tokens=3)
        state_space = analyze_throughput(g).throughput
        mcm_based = hsdf_throughput(to_hsdf(g))
        assert state_space == mcm_based
        # Three overlapping A firings: 3 tokens / 10 cycles... bounded by
        # B at 1/5; the engines agree on whichever binds.
        assert state_space == Fraction(1, 5)
