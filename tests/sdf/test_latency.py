"""Tests for latency analysis."""

import pytest

from repro.exceptions import SimulationError
from repro.sdf import SDFGraph
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.latency import (
    first_iteration_latency,
    source_to_sink_latency,
)


def chain(times, capacity=4):
    g = SDFGraph("lat_chain")
    previous = None
    for index, t in enumerate(times):
        actor = f"n{index}"
        g.add_actor(actor, execution_time=t)
        if previous is not None:
            g.add_edge(f"e{index - 1}", previous, actor, token_size=4)
        previous = actor
    capacities = {e.name: capacity for e in g.explicit_edges()}
    return add_buffer_edges(g, BufferDistribution(capacities))


class TestFirstIteration:
    def test_chain_is_sum_of_stages(self):
        g = chain([10, 20, 30])
        # Cold start: no pipelining possible inside one iteration.
        assert first_iteration_latency(g) == 60

    def test_parallel_branches_take_the_longer_one(self):
        g = SDFGraph("fork")
        g.add_actor("S", execution_time=5)
        g.add_actor("fast", execution_time=10)
        g.add_actor("slow", execution_time=50)
        g.add_edge("sf", "S", "fast", token_size=4)
        g.add_edge("ss", "S", "slow", token_size=4)
        assert first_iteration_latency(g) == 55

    def test_single_processor_with_static_order(self):
        g = chain([10, 20, 30])
        latency = first_iteration_latency(
            g,
            processor_of={"n0": "t", "n1": "t", "n2": "t"},
            static_order={"t": ["n0", "n1", "n2"]},
        )
        assert latency == 60  # the order runs the chain exactly once

    def test_single_processor_greedy_may_run_ahead(self):
        """Without a static order the greedy processor may interleave
        later-iteration source firings before finishing iteration one --
        the reason the flow always fixes a static order."""
        g = chain([10, 20, 30])
        greedy = first_iteration_latency(
            g, processor_of={"n0": "t", "n1": "t", "n2": "t"}
        )
        assert greedy >= 60

    def test_multirate_iteration(self, figure2_graph):
        # One iteration: A (4), then B twice (3+3 serialized by
        # auto-concurrency), then C (2) once both inputs are ready.
        assert first_iteration_latency(figure2_graph) == 4 + 6 + 2


class TestSourceToSink:
    def test_tight_buffers_add_credit_waiting(self):
        """Capacity 1: the source fires as soon as its credit returns,
        but its token then waits for downstream credits -- per-input
        latency exceeds the bare critical path (hand-traced: 80)."""
        g = chain([10, 20, 30], capacity=1)
        latency = source_to_sink_latency(g, "n0", "n2")
        assert latency == 80

    def test_pipelining_does_not_shrink_per_input_latency(self):
        g = chain([10, 20, 30], capacity=4)
        latency = source_to_sink_latency(g, "n0", "n2")
        # The input still traverses all stages; queueing can only add.
        assert latency >= 60

    def test_slow_bottleneck_adds_queueing(self):
        g = chain([10, 50, 10], capacity=4)
        latency = source_to_sink_latency(g, "n0", "n2")
        # n0 runs ahead and its tokens queue before n1: latency > sum.
        assert latency > 70

    def test_unknown_actor_rejected(self):
        g = chain([10, 20])
        with pytest.raises(SimulationError, match="not in graph"):
            source_to_sink_latency(g, "n0", "zed")

    def test_multirate_source_sink(self, figure2_graph):
        from repro.sdf.buffers import (
            BufferDistribution,
            add_buffer_edges,
        )

        bounded = add_buffer_edges(
            figure2_graph,
            BufferDistribution({"a2b": 4, "a2c": 2, "b2c": 4}),
        )
        latency = source_to_sink_latency(bounded, "A", "C")
        assert latency >= 4 + 3 + 2  # at least the critical path
