"""Channel parameters for the Fig. 4 communication model.

The network interface moves 32-bit words (Section 4.1: the Xilinx Fast
Simplex Link interface "limits the network interface to communicating
32-bit words").  A token of ``s`` bytes therefore fragments into
``N = ceil(s / 4)`` words -- the token fragmentation that the paper adds
over the CA-MPSoC model.

Fig. 4's tunables, quoting Section 4.2: "The model in Figure 4 can be used
for modeling communication over many different forms of interconnect by
changing ``w``, ``alpha_n``, and the execution times of ``s1``, ``c2``, and
``d1`` to appropriate values."  :class:`ChannelParameters` carries exactly
the interconnect-side knobs (``w``, ``alpha_n``, and the latency-rate pair
for ``c1``/``c2``); the serialization-side times (``s1``, ``d1``) live in
:mod:`repro.comm.serialization` because they belong to the tile, not the
link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ArchitectureError

WORD_BITS = 32
WORD_BYTES = WORD_BITS // 8


def words_per_token(token_size_bytes: int) -> int:
    """Number of 32-bit words needed for a token of the given size (N)."""
    if token_size_bytes <= 0:
        raise ArchitectureError(
            f"token size must be positive, got {token_size_bytes}"
        )
    return -(-token_size_bytes // WORD_BYTES)  # ceil division


@dataclass(frozen=True)
class ChannelParameters:
    """Interconnect-side parameters of one connection (Fig. 4).

    Attributes
    ----------
    words_in_flight:
        ``w`` -- the maximum number of words in simultaneous transmission
        (initial tokens on the ``c2 -> c1`` back-edge).
    network_buffer_words:
        ``alpha_n`` -- words of buffering the connection provides inside
        the network, added to the same back-edge.
    injection_cycles_per_word:
        Execution time of ``c1``: the rate component of the latency-rate
        server (cycles between word injections; 1 for a full-width FSL,
        ``ceil(32 / wires)`` for an SDM NoC connection).
    channel_latency:
        Execution time of ``c2``: the latency component (propagation time
        of one word through the channel).
    """

    words_in_flight: int
    network_buffer_words: int
    injection_cycles_per_word: int
    channel_latency: int

    def __post_init__(self) -> None:
        if self.words_in_flight < 1:
            raise ArchitectureError(
                f"w must be >= 1, got {self.words_in_flight}"
            )
        if self.network_buffer_words < 0:
            raise ArchitectureError(
                f"alpha_n must be >= 0, got {self.network_buffer_words}"
            )
        if self.injection_cycles_per_word < 0:
            raise ArchitectureError("injection rate must be >= 0")
        if self.channel_latency < 0:
            raise ArchitectureError("channel latency must be >= 0")

    def word_transfer_cycles(self, n_words: int) -> int:
        """Lower bound on moving ``n_words`` through the channel: pipelined
        injection plus one final propagation."""
        if n_words <= 0:
            return 0
        return self.injection_cycles_per_word * n_words + self.channel_latency
