"""Tests for FlowSession (resume) and run_batch (shared workspaces)."""

import hashlib

import pytest

from repro.artifacts import from_payload, to_payload
from repro.exceptions import ReproError
from repro.flow import FlowSession, run_batch
from repro.flow.session import BatchReport, SessionResult, StageRecord
from repro.flow.spec import FlowSpec

SOLO = {
    "name": "solo",
    "app": {"sequence": "gradient", "frames": 1},
    "architecture": {"tiles": 2},
    "mapping": {"fixed": {"VLD": "tile0"}},
}

DUO = {
    "name": "duo",
    "apps": [
        {"name": "decoder", "sequence": "gradient", "frames": 1,
         "fixed": {"VLD": "tile0"}},
        {"name": "osd", "sequence": "checkerboard", "frames": 1},
    ],
    "architecture": {"tiles": 4, "interconnect": "noc"},
    "mapping": {"binding": "spiral"},
}


@pytest.fixture
def solo_spec():
    return FlowSpec.from_dict(dict(SOLO))


@pytest.fixture
def duo_spec():
    return FlowSpec.from_dict(dict(DUO))


def artifact_tree(workspace):
    """(relative path -> content hash) of every artifact in a workspace."""
    root = workspace / "artifacts"
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*.json"))
    }


class TestFlowSession:
    def test_first_run_computes_every_stage(self, tmp_path, solo_spec):
        result = FlowSession(tmp_path, solo_spec).run()
        assert result.resumed_stages == ()
        assert result.computed_stages == (
            "application:gradient", "architecture", "mapping:gradient",
        )
        assert result.guarantee_of("gradient") > 0
        assert (tmp_path / "sessions" / "solo.json").exists()

    def test_second_run_resumes_every_stage(self, tmp_path, solo_spec):
        first = FlowSession(tmp_path, solo_spec).run()
        second = FlowSession(tmp_path, solo_spec).run()
        assert second.computed_stages == ()
        assert second.resumed_stages == tuple(
            s.stage for s in first.stages
        )
        assert second.resume_rate() == 1.0
        assert second.guarantees() == first.guarantees()

    def test_resume_works_across_session_objects_only_sharing_disk(
        self, tmp_path, solo_spec
    ):
        FlowSession(tmp_path, solo_spec).run()
        # fresh store object, same directory: simulates a new process
        fresh = FlowSession(tmp_path, solo_spec)
        assert fresh.store is not None
        assert fresh.run().resume_rate() == 1.0

    def test_changed_mapping_knobs_recompute_only_mapping(
        self, tmp_path, solo_spec
    ):
        FlowSession(tmp_path, solo_spec).run()
        changed = FlowSpec.from_dict(
            {**SOLO, "mapping": {"fixed": {"VLD": "tile1"}}}
        )
        result = FlowSession(tmp_path, changed).run()
        assert result.computed_stages == ("mapping:gradient",)
        assert set(result.resumed_stages) == {
            "application:gradient", "architecture",
        }

    def test_changed_architecture_recomputes_arch_and_mapping(
        self, tmp_path, solo_spec
    ):
        FlowSession(tmp_path, solo_spec).run()
        changed = FlowSpec.from_dict(
            {**SOLO, "architecture": {"tiles": 3}}
        )
        result = FlowSession(tmp_path, changed).run()
        assert result.resumed_stages == ("application:gradient",)
        assert set(result.computed_stages) == {
            "architecture", "mapping:gradient",
        }

    def test_multi_app_session_maps_every_use_case(
        self, tmp_path, duo_spec
    ):
        result = FlowSession(tmp_path, duo_spec).run()
        assert set(result.mappings) == {"decoder", "osd"}
        assert result.use_cases is not None
        assert set(result.use_cases.results) == {"decoder", "osd"}
        assert result.computed_stages[-1] == "use-cases"
        resumed = FlowSession(tmp_path, duo_spec).run()
        assert resumed.resume_rate() == 1.0
        assert resumed.use_cases == result.use_cases

    def test_stage_timers_show_resume_is_cheap(self, tmp_path, duo_spec):
        FlowSession(tmp_path, duo_spec).run()
        result = FlowSession(tmp_path, duo_spec).run()
        mapping_stages = [
            s for s in result.stages if s.stage.startswith("mapping:")
        ]
        assert mapping_stages and all(s.resumed for s in mapping_stages)
        # loading an artifact must be far below any real mapping run
        assert all(s.seconds < 1.0 for s in mapping_stages)

    def test_session_result_roundtrips(self, tmp_path, duo_spec):
        result = FlowSession(tmp_path, duo_spec).run()
        assert from_payload(to_payload(result)) == result

    def test_session_report_loads_as_session_result(
        self, tmp_path, solo_spec
    ):
        import json

        FlowSession(tmp_path, solo_spec).run()
        payload = json.loads(
            (tmp_path / "sessions" / "solo.json").read_text("utf-8")
        )
        loaded = from_payload(payload)
        assert isinstance(loaded, SessionResult)
        assert loaded.spec_name == "solo"
        assert all(isinstance(s, StageRecord) for s in loaded.stages)


class TestRunBatch:
    def test_concurrent_batch_matches_sequential_byte_for_byte(
        self, tmp_path, solo_spec, duo_spec
    ):
        """Two multi-application specs (plus a single-app one) run
        concurrently must write the exact bytes a serial run writes."""
        trio_spec = FlowSpec.from_dict({
            "name": "trio",
            "apps": [
                {"name": "decoder", "sequence": "gradient", "frames": 1,
                 "fixed": {"VLD": "tile0"}},
                {"name": "osd", "sequence": "checkerboard", "frames": 1},
                {"name": "ticker", "sequence": "text", "frames": 1},
            ],
            "architecture": {"tiles": 5},
        })
        specs = [solo_spec, duo_spec, trio_spec]
        ws_serial = tmp_path / "serial"
        ws_parallel = tmp_path / "parallel"
        serial = run_batch(specs, ws_serial, jobs=1)
        parallel = run_batch(specs, ws_parallel, jobs=4)
        assert serial.ok and parallel.ok
        tree = artifact_tree(ws_serial)
        assert tree  # non-empty
        assert artifact_tree(ws_parallel) == tree
        assert [e.guarantees for e in serial.entries] == \
            [e.guarantees for e in parallel.entries]

    def test_second_batch_resumes_everything(
        self, tmp_path, solo_spec, duo_spec
    ):
        first = run_batch([solo_spec, duo_spec], tmp_path, jobs=2)
        assert first.resume_rate() == 0.0
        second = run_batch([solo_spec, duo_spec], tmp_path, jobs=2)
        assert second.stages_total == first.stages_total
        assert second.resume_rate() >= 0.9  # the CI gate; actually 1.0
        assert second.resume_rate() == 1.0

    def test_overlapping_specs_share_artifacts(self, tmp_path, solo_spec):
        """Two scenarios with the same app stage share its artifact."""
        other = FlowSpec.from_dict(
            {**SOLO, "name": "solo-3t", "architecture": {"tiles": 3}}
        )
        report = run_batch([solo_spec, other], tmp_path)
        assert report.ok
        # one shared application artifact, two architectures/mappings
        store_root = tmp_path / "artifacts"
        assert len(list((store_root / "application").glob("*.json"))) == 1
        assert len(list((store_root / "mapping-result").glob("*.json"))) \
            == 2

    def test_failing_spec_is_reported_not_raised(self, tmp_path,
                                                 solo_spec):
        bad = FlowSpec.from_dict(
            {"name": "bad", "app": {"sequence": "gradient", "frames": 1},
             "architecture": {"tiles": 2},
             # unroutable pin: no such tile in a 2-tile platform
             "mapping": {"fixed": {"VLD": "tile7"}}}
        )
        report = run_batch([solo_spec, bad], tmp_path)
        assert not report.ok
        by_name = {e.name: e for e in report.entries}
        assert by_name["solo"].ok
        assert not by_name["bad"].ok
        assert by_name["bad"].error

    def test_report_written_and_roundtrips(self, tmp_path, solo_spec):
        import json

        report = run_batch([solo_spec], tmp_path)
        on_disk = json.loads(
            (tmp_path / "batch-report.json").read_text("utf-8")
        )
        loaded = from_payload(on_disk)
        assert isinstance(loaded, BatchReport)
        assert loaded == from_payload(to_payload(report))
        assert on_disk["resume_rate"] == 0.0

    def test_spec_paths_are_accepted(self, tmp_path):
        spec_file = tmp_path / "solo.json"
        import json

        spec_file.write_text(json.dumps(SOLO), encoding="utf-8")
        report = run_batch([spec_file], tmp_path / "ws")
        assert report.ok
        assert report.entries[0].name == "solo"

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="at least one"):
            run_batch([], tmp_path)


class TestReportHygiene:
    def test_hostile_spec_names_stay_inside_the_workspace(self, tmp_path):
        spec = FlowSpec.from_dict(
            {**SOLO, "name": "../../evil/../name"}
        )
        FlowSession(tmp_path, spec).run()
        session_files = list((tmp_path / "sessions").glob("*.json"))
        assert len(session_files) == 1
        assert session_files[0].parent == tmp_path / "sessions"
        # nothing escaped the workspace
        assert not (tmp_path.parent / "evil").exists()

    def test_report_writes_leave_no_temp_files(self, tmp_path, solo_spec):
        run_batch([solo_spec], tmp_path)
        stray = [
            p for p in tmp_path.rglob(".tmp-*") if p.is_file()
        ]
        assert stray == []
