"""Process-backend scheduler tests: compute, health, prompt shutdown."""

import os
import threading
import time

import pytest

from repro.service import (
    RESPONSE_KIND,
    SOURCE_ARTIFACTS,
    SOURCE_COMPUTED,
    FlowScheduler,
)

SOLO = {
    "name": "solo",
    "app": {"sequence": "gradient", "frames": 1},
    "architecture": {"tiles": 2},
    "mapping": {"fixed": {"VLD": "tile0"}},
}


def wait_done(scheduler, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = scheduler.get(job_id)
        if view["status"] in ("done", "failed"):
            return view
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


@pytest.fixture
def process_scheduler(tmp_path):
    with FlowScheduler(
        tmp_path / "ws", jobs=2, max_queue=8,
        backend="process", replica="r-test",
    ) as s:
        yield s


class TestProcessCompute:
    def test_computes_on_worker_processes(self, process_scheduler):
        view = wait_done(
            process_scheduler,
            process_scheduler.submit(SOLO)["id"],
        )
        assert view["status"] == "done"
        assert view["source"] == SOURCE_COMPUTED
        assert view["replica"] == "r-test"
        # stage records are backfilled from the worker's result
        assert view["stages"], "no stage records came back"
        assert all(s["status"] == "computed" for s in view["stages"])
        # and the work demonstrably left this process
        assert any(
            p.pid != os.getpid()
            for p in process_scheduler.pool.worker_processes()
        )

    def test_artifact_fast_path_after_process_compute(
        self, process_scheduler
    ):
        first = wait_done(
            process_scheduler, process_scheduler.submit(SOLO)["id"]
        )
        again = process_scheduler.submit(SOLO)
        assert again["status"] == "done"
        assert again["source"] == SOURCE_ARTIFACTS
        assert process_scheduler.counters.artifact_hits == 1
        assert process_scheduler.result_text(
            again["id"]
        ) == process_scheduler.result_text(first["id"])

    def test_response_text_matches_thread_backend(
        self, tmp_path, process_scheduler
    ):
        by_process = process_scheduler.result_text(
            wait_done(
                process_scheduler, process_scheduler.submit(SOLO)["id"]
            )["id"]
        )
        with FlowScheduler(tmp_path / "thread-ws", jobs=1) as thread:
            by_thread = thread.result_text(
                wait_done(thread, thread.submit(SOLO)["id"])["id"]
            )
        assert by_process == by_thread


class TestHealth:
    def test_health_reports_backend_and_replica(self, process_scheduler):
        health = process_scheduler.health()
        assert health["backend"] == "process"
        assert health["replica"] == "r-test"
        assert health["worker_slots"] == 2
        assert set(health["counters"]) >= {
            "submitted", "coalesced", "artifact_hits", "computed",
            "failed",
        }

    def test_thread_scheduler_reports_its_backend(self, tmp_path):
        with FlowScheduler(tmp_path / "ws", jobs=1) as scheduler:
            health = scheduler.health()
            assert health["backend"] == "thread"
            assert health["replica"].startswith("replica-")


class TestPromptShutdown:
    def test_close_terminates_workers_behind_a_wedged_job(
        self, tmp_path, monkeypatch
    ):
        # Fork workers inherit this patch, so the job wedges inside the
        # child -- exactly the state a Ctrl-C during a long compute
        # leaves behind.
        import repro.service.scheduler as scheduler_module

        def wedged(spec, workspace, store=None):
            time.sleep(120.0)
            raise AssertionError("unreachable")

        monkeypatch.setattr(scheduler_module, "execute_spec", wedged)
        scheduler = FlowScheduler(
            tmp_path / "ws", jobs=1, backend="process"
        )
        scheduler.submit(SOLO)
        deadline = time.monotonic() + 10.0
        pids = []
        while time.monotonic() < deadline and not pids:
            pids = [
                p.pid for p in scheduler.pool.worker_processes()
            ]
            time.sleep(0.05)
        assert pids, "worker process never started"

        started = time.monotonic()
        scheduler.close(timeout=1.0)
        elapsed = time.monotonic() - started
        assert elapsed < 30.0, (
            f"close took {elapsed:.1f}s; must not wait out the job"
        )
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.1)
        for pid in pids:
            assert not _alive(pid), f"orphaned worker {pid}"

    def test_serve_shutdown_with_inflight_job(
        self, tmp_path, monkeypatch
    ):
        # the full `repro serve` teardown order under an in-flight job:
        # server.shutdown() -> server_close() -> scheduler.close()
        import repro.service.scheduler as scheduler_module

        from repro.service import FlowServiceClient, serve

        def slow(spec, workspace, store=None, _real=scheduler_module
                 .execute_spec):
            time.sleep(120.0)
            return _real(spec, workspace, store=store)

        monkeypatch.setattr(scheduler_module, "execute_spec", slow)
        server = serve(
            tmp_path / "ws", port=0, jobs=1, backend="process"
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        client = FlowServiceClient(server.url)
        view = client.submit(SOLO)
        assert view["status"] in ("queued", "running")
        pids = []
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not pids:
            pids = [
                p.pid
                for p in server.scheduler.pool.worker_processes()
            ]
            time.sleep(0.05)

        started = time.monotonic()
        server.shutdown()
        server.server_close()
        server.scheduler.close(timeout=1.0)
        assert time.monotonic() - started < 30.0
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        for pid in pids:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and _alive(pid):
                time.sleep(0.1)
            assert not _alive(pid), f"orphaned worker {pid}"


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True
