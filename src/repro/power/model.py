"""Platform power model with technology-node scaling.

The model follows the lumos MPSoC template: every component contributes
a *static* (leakage) term proportional to its occupied resources and a
*dynamic* (switching) term that is only paid while the component is
active, and both terms scale with the technology node.  The absolute
calibration constants are typical of Virtex-6-era soft cores at the
45 nm base node (mirroring :mod:`repro.arch.area`); the *relative*
quantities -- the static/dynamic split, the per-hop NoC surcharge over
a dedicated FSL FIFO (Marcon-style bit energy), and the node-scaling
trends -- are what the estimates reproduce.

All quantities are exact :class:`fractions.Fraction` values in fixed
units (micro-watts for power, pico-joules for energy) so estimates are
bit-reproducible and round-trip byte-identically through the artifact
schema.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from repro.arch.interconnect import FSLInterconnect, Interconnect
from repro.arch.noc import SDMNoC
from repro.arch.tile import Tile
from repro.arch.area import FSL_LINK_SLICES, noc_router_slices, tile_area
from repro.exceptions import PowerError

#: Base technology node of all calibration constants (nm).
BASE_TECH_NM = 45

#: Supported nodes -> exact (dynamic_scale, static_scale) factors.
#: Dynamic power per operation shrinks with the node (lower C*V^2) while
#: leakage grows -- the post-Dennard trend the lumos model captures.
TECH_NODES: Dict[int, Tuple[Fraction, Fraction]] = {
    45: (Fraction(1), Fraction(1)),
    32: (Fraction(3, 4), Fraction(4, 3)),
    22: (Fraction(1, 2), Fraction(2)),
    16: (Fraction(3, 8), Fraction(3)),
}

#: Static (leakage) power per occupied slice, microwatts at 45 nm.
STATIC_UW_PER_SLICE = 2
#: Static power per block RAM, microwatts at 45 nm.
STATIC_UW_PER_BRAM = 40
#: Dynamic power of one active Microblaze core, microwatts at 45 nm.
MICROBLAZE_DYNAMIC_UW = 80_000
#: Dynamic power of an active communication assist, microwatts.
CA_DYNAMIC_UW = 15_000
#: Dynamic power of the per-tile network-interface glue, microwatts.
NI_DYNAMIC_UW = 5_000
#: Dynamic power of one peripheral controller, microwatts.
PERIPHERAL_DYNAMIC_UW = 8_000
#: Dynamic power of one SDM router under full load, microwatts.
NOC_ROUTER_DYNAMIC_UW = 12_000
#: Dynamic power of one allocated FSL FIFO link, microwatts.
FSL_LINK_DYNAMIC_UW = 1_000

#: Energy to push one 32-bit word through a dedicated FSL FIFO, pJ.
FSL_WORD_PJ = 3
#: NoC network-interface packetisation energy per 32-bit word, pJ.
NOC_INJECTION_PJ_PER_WORD = 6
#: Energy per 32-bit word per router/link hop traversed (Marcon-style
#: bit energy aggregated to word granularity), pJ.
NOC_HOP_PJ_PER_WORD = 4
#: Bytes per interconnect word.
WORD_BYTES = 4


def words_per_token(token_size: int) -> int:
    """Interconnect words needed to carry one token."""
    return -(-max(token_size, 0) // WORD_BYTES)  # ceil division


@dataclass(frozen=True)
class PowerModel:
    """Technology-scaled power/energy calibration.

    ``tech_nm`` selects the scaling pair from :data:`TECH_NODES`;
    ``clock_ns`` is the platform clock period used to convert
    cycle counts into wall time (100 MHz by default, matching the
    Microblaze configuration the paper's platforms target).
    """

    tech_nm: int = BASE_TECH_NM
    clock_ns: int = 10

    def __post_init__(self) -> None:
        if self.tech_nm not in TECH_NODES:
            known = ", ".join(str(nm) for nm in sorted(TECH_NODES))
            raise PowerError(
                f"unknown technology node {self.tech_nm} nm "
                f"(known: {known})"
            )
        if self.clock_ns < 1:
            raise PowerError(
                f"clock period must be >= 1 ns, got {self.clock_ns}"
            )

    @property
    def dynamic_scale(self) -> Fraction:
        return TECH_NODES[self.tech_nm][0]

    @property
    def static_scale(self) -> Fraction:
        return TECH_NODES[self.tech_nm][1]

    def cache_token(self) -> str:
        """Deterministic token identifying the model in cache keys."""
        return f"tech={self.tech_nm},clk={self.clock_ns}"

    # -- power (microwatts) -------------------------------------------

    def tile_static_uw(self, tile: Tile) -> Fraction:
        """Leakage of one tile's logic and memories."""
        area = tile_area(tile)
        base = (
            STATIC_UW_PER_SLICE * area.slices
            + STATIC_UW_PER_BRAM * area.brams
        )
        return base * self.static_scale

    def tile_dynamic_uw(self, tile: Tile) -> Fraction:
        """Switching power of one fully active tile."""
        uw = NI_DYNAMIC_UW
        if tile.processor is not None:
            uw += MICROBLAZE_DYNAMIC_UW
        if tile.has_ca:
            uw += CA_DYNAMIC_UW
        uw += PERIPHERAL_DYNAMIC_UW * len(tile.peripherals)
        return uw * self.dynamic_scale

    def interconnect_static_uw(self, interconnect: Interconnect) -> Fraction:
        """Leakage of the interconnect as currently allocated."""
        if isinstance(interconnect, FSLInterconnect):
            links = len(interconnect.allocated_connections())
            slices = FSL_LINK_SLICES * max(links, 0)
        elif isinstance(interconnect, SDMNoC):
            slices = (
                noc_router_slices(interconnect.flow_control)
                * interconnect.router_count()
            )
        else:
            slices = 0
        return STATIC_UW_PER_SLICE * slices * self.static_scale

    def interconnect_dynamic_uw(self, interconnect: Interconnect) -> Fraction:
        """Switching power of the interconnect under full load."""
        if isinstance(interconnect, FSLInterconnect):
            links = len(interconnect.allocated_connections())
            uw = FSL_LINK_DYNAMIC_UW * max(links, 0)
        elif isinstance(interconnect, SDMNoC):
            uw = NOC_ROUTER_DYNAMIC_UW * interconnect.router_count()
        else:
            uw = 0
        return uw * self.dynamic_scale

    # -- energy (picojoules) ------------------------------------------

    def word_energy_pj(
        self,
        interconnect: Interconnect,
        src_tile: str,
        dst_tile: str,
    ) -> Fraction:
        """Energy to move one 32-bit word between two tiles.

        FSL links are dedicated point-to-point FIFOs with a flat
        per-word cost; NoC transfers pay packetisation at the network
        interface plus a per-hop term over the XY route length.
        """
        if src_tile == dst_tile:
            return Fraction(0)
        if isinstance(interconnect, SDMNoC):
            hops = interconnect.hop_distance(src_tile, dst_tile)
            base = NOC_INJECTION_PJ_PER_WORD + NOC_HOP_PJ_PER_WORD * hops
        else:
            base = FSL_WORD_PJ
        return base * self.dynamic_scale

    def transfer_energy_pj(
        self,
        interconnect: Interconnect,
        src_tile: str,
        dst_tile: str,
        tokens: int,
        token_size: int,
    ) -> Fraction:
        """Energy for ``tokens`` tokens of ``token_size`` bytes each."""
        words = words_per_token(token_size)
        return (
            self.word_energy_pj(interconnect, src_tile, dst_tile)
            * tokens
            * words
        )


class PowerCounters:
    """Process-wide counters of power/energy estimates, mirrored into
    the service ``/v1/healthz`` payload (same idiom as the throughput
    engine's tier counters)."""

    __slots__ = ("_lock", "platform", "application")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.platform = 0
        self.application = 0

    def record(self, kind: str) -> None:
        with self._lock:
            setattr(self, kind, getattr(self, kind) + 1)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "platform": self.platform,
                "application": self.application,
            }


_GLOBAL_COUNTERS = PowerCounters()


def power_counters() -> PowerCounters:
    """The process-wide power-estimate counters."""
    return _GLOBAL_COUNTERS


__all__ = [
    "BASE_TECH_NM",
    "TECH_NODES",
    "PowerModel",
    "PowerCounters",
    "power_counters",
    "words_per_token",
]
