"""Cross-backend byte-identity of session execution.

The tentpole guarantee of the process backend: the *artifacts* a flow
computes are a function of the spec alone, never of where the work ran.
A thread run and a process run of the same specs against fresh
workspaces must write byte-identical ``artifacts/`` trees.
"""

from pathlib import Path
from typing import Dict

import pytest

from repro.artifacts import to_payload
from repro.flow import execute_spec, execute_spec_on, run_batch
from repro.scenarios import generate_scenarios, scenario_flow_spec


@pytest.fixture(scope="module")
def specs():
    return [
        scenario_flow_spec(spec)
        for spec in generate_scenarios("chain", 2, seed=93, actors=5)
    ]


def without_timing(payload):
    """The payload minus wall-clock and workspace-path fields -- the
    only parts of a session result that legitimately differ between
    two runs of the same spec."""
    if isinstance(payload, dict):
        return {
            key: without_timing(value)
            for key, value in payload.items()
            if key not in ("seconds", "elapsed_seconds", "workspace")
        }
    if isinstance(payload, list):
        return [without_timing(value) for value in payload]
    return payload


def artifact_tree(workspace: Path) -> Dict[str, bytes]:
    """Relative path -> exact bytes of every artifact in a workspace."""
    root = workspace / "artifacts"
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


class TestRunBatchBackends:
    def test_process_batch_matches_thread_batch_byte_for_byte(
        self, tmp_path, specs
    ):
        thread_ws = tmp_path / "thread"
        process_ws = tmp_path / "process"
        thread_report = run_batch(specs, thread_ws, jobs=2)
        process_report = run_batch(
            specs, process_ws, jobs=2, backend="process"
        )
        assert thread_report.ok and process_report.ok
        thread_tree = artifact_tree(thread_ws)
        assert thread_tree, "thread run wrote no artifacts"
        assert artifact_tree(process_ws) == thread_tree

    def test_process_batch_reports_match_modulo_timing(
        self, tmp_path, specs
    ):
        thread = run_batch(specs, tmp_path / "a", jobs=1)
        process = run_batch(
            specs, tmp_path / "b", jobs=2, backend="process"
        )
        assert [e.name for e in thread.entries] == [
            e.name for e in process.entries
        ]
        assert [e.ok for e in thread.entries] == [
            e.ok for e in process.entries
        ]
        assert process.jobs == 2

    def test_spec_paths_ship_across_the_boundary(self, tmp_path, specs):
        from repro.scenarios import render_flow_spec_toml

        path = tmp_path / "spec.toml"
        path.write_text(
            render_flow_spec_toml(specs[0]), encoding="utf-8"
        )
        report = run_batch(
            [str(path)], tmp_path / "ws", jobs=1, backend="process"
        )
        assert report.ok
        assert report.entries[0].spec == str(path)


class TestExecuteSpecOn:
    def test_thread_path_is_execute_spec(self, tmp_path, specs):
        direct = execute_spec(specs[0], tmp_path / "direct")
        routed = execute_spec_on(specs[0], tmp_path / "routed")
        assert without_timing(to_payload(routed)) == without_timing(
            to_payload(direct)
        )
        assert artifact_tree(tmp_path / "routed") == artifact_tree(
            tmp_path / "direct"
        )

    def test_process_result_decodes_to_the_same_payload(
        self, tmp_path, specs
    ):
        thread = execute_spec_on(specs[0], tmp_path / "t")
        process = execute_spec_on(
            specs[0], tmp_path / "p", backend="process"
        )
        assert without_timing(to_payload(process)) == without_timing(
            to_payload(thread)
        )
        assert artifact_tree(tmp_path / "p") == artifact_tree(
            tmp_path / "t"
        )
