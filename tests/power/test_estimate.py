"""Tests for platform power / application energy estimation."""

from fractions import Fraction

import pytest

from repro.arch import architecture_from_template
from repro.artifacts import canonical_json, from_payload, to_payload
from repro.exceptions import PowerError
from repro.mapping import map_application
from repro.power import (
    EnergyEstimate,
    PowerEstimate,
    PowerModel,
    application_energy,
    platform_power,
    power_counters,
)
from repro.scenarios import generate_scenarios, scenario_flow_spec


@pytest.fixture(scope="module")
def mapped_scenario():
    """One mapped synthetic scenario: (app, arch, result)."""
    spec = generate_scenarios("chain", 1, seed=7)[0]
    flow_spec = scenario_flow_spec(spec)
    app = flow_spec.build_application()
    arch = flow_spec.build_architecture()
    result = map_application(
        app, arch, pipeline=flow_spec.strategies.build_pipeline()
    )
    return app, arch, result


class TestPlatformPower:
    def test_totals_and_split(self):
        arch = architecture_from_template(3, "noc")
        estimate = platform_power(arch)
        assert estimate.total_mw == (
            estimate.static_mw + estimate.dynamic_mw
        )
        assert estimate.static_mw > 0
        assert estimate.dynamic_mw > estimate.static_mw

    def test_more_tiles_draw_more_power(self):
        small = platform_power(architecture_from_template(2, "fsl"))
        large = platform_power(architecture_from_template(4, "fsl"))
        assert large.total_mw > small.total_mw

    def test_scaling_directions(self):
        arch = architecture_from_template(3, "fsl")
        base = platform_power(arch, PowerModel())
        shrunk = platform_power(arch, PowerModel(tech_nm=22))
        assert shrunk.dynamic_mw == base.dynamic_mw / 2
        assert shrunk.static_mw == base.static_mw * 2
        assert shrunk.tech_nm == 22

    def test_within_budget_semantics(self):
        estimate = PowerEstimate(
            static_mw=Fraction(10), dynamic_mw=Fraction(90), tech_nm=45
        )
        assert estimate.within_budget(None)  # no budget: always fine
        assert estimate.within_budget(Fraction(100))  # inclusive
        assert not estimate.within_budget(Fraction(99))

    def test_payload_round_trip_is_byte_identical(self):
        arch = architecture_from_template(2, "noc")
        estimate = platform_power(arch, PowerModel(tech_nm=16))
        payload = to_payload(estimate)
        clone = from_payload(payload)
        assert clone == estimate
        assert canonical_json(to_payload(clone)) == canonical_json(
            payload
        )

    def test_counts_into_process_counters(self):
        before = power_counters().snapshot()["platform"]
        platform_power(architecture_from_template(1, "fsl"))
        assert power_counters().snapshot()["platform"] == before + 1


class TestApplicationEnergy:
    def test_terms_are_positive(self, mapped_scenario):
        app, arch, result = mapped_scenario
        energy = application_energy(app, result, arch)
        assert energy.compute_pj > 0
        assert energy.static_pj > 0
        assert energy.communication_pj >= 0
        assert energy.total_pj == (
            energy.compute_pj
            + energy.communication_pj
            + energy.static_pj
        )
        assert energy.total_nj == energy.total_pj / 1000

    def test_deterministic_across_evaluations(self, mapped_scenario):
        app, arch, result = mapped_scenario
        assert application_energy(
            app, result, arch
        ) == application_energy(app, result, arch)

    def test_dynamic_terms_shrink_with_the_node(self, mapped_scenario):
        app, arch, result = mapped_scenario
        base = application_energy(app, result, arch)
        shrunk = application_energy(
            app, result, arch, PowerModel(tech_nm=16)
        )
        assert shrunk.compute_pj == base.compute_pj * Fraction(3, 8)
        assert shrunk.static_pj == base.static_pj * 3

    def test_zero_throughput_mapping_rejected(self, mapped_scenario):
        app, arch, result = mapped_scenario

        class Stalled:
            guaranteed_throughput = None

        with pytest.raises(PowerError, match="without a positive"):
            application_energy(app, Stalled(), arch)

        class Zero:
            guaranteed_throughput = Fraction(0)

        with pytest.raises(PowerError, match="without a positive"):
            application_energy(app, Zero(), arch)

    def test_energy_payload_round_trip(self, mapped_scenario):
        app, arch, result = mapped_scenario
        energy = application_energy(app, result, arch)
        payload = to_payload(energy)
        clone = from_payload(payload)
        assert isinstance(clone, EnergyEstimate)
        assert clone == energy
        assert canonical_json(to_payload(clone)) == canonical_json(
            payload
        )

    def test_within_budget_checks_nanojoules(self, mapped_scenario):
        app, arch, result = mapped_scenario
        energy = application_energy(app, result, arch)
        assert energy.within_budget(None)
        assert energy.within_budget(energy.total_nj)
        assert not energy.within_budget(energy.total_nj - Fraction(1))

    def test_counts_into_process_counters(self, mapped_scenario):
        app, arch, result = mapped_scenario
        before = power_counters().snapshot()["application"]
        application_energy(app, result, arch)
        assert (
            power_counters().snapshot()["application"] == before + 1
        )
