"""Residual capacity bookkeeping and point relocation."""

from fractions import Fraction

import pytest

from repro.arch.noc import xy_route
from repro.runtime import (
    ChannelFootprint,
    OperatingPoint,
    ResidualPlatform,
    find_placement,
)
from repro.runtime.library import _prefix_architecture

from tests.runtime.conftest import ARCH_FSL, ARCH_NOC


def point(tiles, channels=(), interconnect="fsl", memory=None):
    return OperatingPoint(
        label=f"{len(tiles)}t/test",
        tiles=tuple(tiles),
        interconnect=interconnect,
        throughput=Fraction(1, 100),
        constraint_met=True,
        area_slices=100,
        tile_memory=(
            memory
            if memory is not None
            else {t: (1024, 512) for t in tiles}
        ),
        channels=tuple(channels),
    )


@pytest.fixture
def fsl_platform():
    return ResidualPlatform(_prefix_architecture(ARCH_FSL, 4))


@pytest.fixture
def noc_platform():
    return ResidualPlatform(_prefix_architecture(ARCH_NOC, 4))


class TestClaims:
    def test_claim_and_release_round_trip(self, fsl_platform):
        before = fsl_platform.snapshot()
        p = point(
            ["tile0", "tile1"],
            [ChannelFootprint("e0", "tile0", "tile1")],
        )
        claim = fsl_platform.claim_for(p, {t: t for t in p.tiles})
        fsl_platform.claim(claim)
        assert fsl_platform.free_tiles() == ("tile2", "tile3")
        assert fsl_platform.snapshot()["out_ports_used"] == {"tile0": 1}
        fsl_platform.release(claim)
        assert fsl_platform.snapshot() == before

    def test_occupied_tile_is_inadmissible(self, fsl_platform):
        p = point(["tile0"])
        claim = fsl_platform.claim_for(p, {"tile0": "tile0"})
        fsl_platform.claim(claim)
        again = fsl_platform.claim_for(p, {"tile0": "tile0"})
        assert "occupied" in fsl_platform.admissible(again)
        with pytest.raises(ValueError, match="inadmissible"):
            fsl_platform.claim(again)

    def test_memory_overflow_is_inadmissible(self, fsl_platform):
        huge = point(["tile0"], memory={"tile0": (1 << 30, 512)})
        claim = fsl_platform.claim_for(huge, {"tile0": "tile0"})
        assert "memory" in fsl_platform.admissible(claim)

    def test_link_wire_overcommit_is_inadmissible(self, noc_platform):
        wires = noc_platform._noc.wires_per_link
        p = point(
            ["tile0", "tile1"],
            [
                ChannelFootprint(
                    "e0", "tile0", "tile1", hops=1, wires=wires + 1
                )
            ],
            interconnect="noc",
        )
        claim = noc_platform.claim_for(p, {t: t for t in p.tiles})
        assert "free wires" in noc_platform.admissible(claim)


class TestFindPlacement:
    def test_relocates_onto_the_free_tiles(self, fsl_platform):
        blocker = point(["tile0"])
        fsl_platform.claim(
            fsl_platform.claim_for(blocker, {"tile0": "tile0"})
        )
        found = find_placement(point(["tile0"]), fsl_platform)
        assert found is not None
        placement, claim = found
        assert placement == {"tile0": "tile1"}
        assert claim.tiles == ("tile1",)

    def test_pinned_tiles_are_placed_identically(self, fsl_platform):
        found = find_placement(
            point(["tile0", "tile1"]), fsl_platform, pinned=["tile1"]
        )
        assert found is not None
        assert found[0]["tile1"] == "tile1"
        blocker = point(["tile0"])
        fsl_platform.claim(
            fsl_platform.claim_for(blocker, {"tile0": "tile1"})
        )
        assert find_placement(
            point(["tile0", "tile1"]), fsl_platform, pinned=["tile1"]
        ) is None

    def test_noc_relocation_preserves_hop_counts(self, noc_platform):
        p = point(
            ["tile0", "tile1"],
            [ChannelFootprint("e0", "tile0", "tile1", hops=1, wires=4)],
            interconnect="noc",
        )
        blocker = point(["tile0"], interconnect="noc")
        noc_platform.claim(
            noc_platform.claim_for(blocker, {"tile0": "tile0"})
        )
        found = find_placement(p, noc_platform)
        assert found is not None
        placement, _ = found
        assert noc_platform._noc.hop_distance(
            placement["tile0"], placement["tile1"]
        ) == 1

    def test_no_fit_returns_none(self, fsl_platform):
        assert find_placement(
            point([f"tile{i}" for i in range(5)]), fsl_platform
        ) is None


class TestResidualArchitecture:
    def test_none_when_no_tile_is_free(self, fsl_platform):
        for tile in ("tile0", "tile1", "tile2", "tile3"):
            p = point([tile], memory={tile: (64, 64)})
            fsl_platform.claim(fsl_platform.claim_for(p, {tile: tile}))
        assert fsl_platform.residual_architecture() is None

    def test_noc_release_all_restores_the_residual_baseline(
        self, noc_platform
    ):
        p = point(
            ["tile0", "tile1"],
            [ChannelFootprint("e0", "tile0", "tile1", hops=1, wires=4)],
            interconnect="noc",
        )
        noc_platform.claim(
            noc_platform.claim_for(p, {t: t for t in p.tiles})
        )
        residual = noc_platform.residual_architecture()
        fabric = residual.interconnect
        baseline = dict(fabric._free_wires)
        assert baseline == noc_platform._free_wires
        # the routing stage resets the fabric before every attempt;
        # the wrapper must restore the residual, not the pristine mesh
        fabric.release_all()
        assert fabric._free_wires == baseline

    def test_xy_route_matches_recorded_hops(self, noc_platform):
        # the invariant find_placement's pruning relies on
        noc = noc_platform._noc
        path = xy_route(
            noc.position_of("tile0"), noc.position_of("tile3")
        )
        assert len(path) - 1 == noc.hop_distance("tile0", "tile3")
