"""WCET measurement harness.

The paper obtains actor WCETs with "a method based on [4] combined with
execution time measurement" (Section 6) and, for the *expected* throughput
of Fig. 6, feeds SDF3 with "WCET metrics obtained through execution time
measurement of the actor code using the test-data used for the FPGA
measurement".  This module provides that measurement side: it executes the
functional actor implementations over a token stream and records
min/avg/max cycles per actor.

* ``max`` over the test data = the measured execution time used for the
  *expected* prediction;
* the implementation's declared WCET metric must dominate every
  measurement, otherwise the throughput guarantee would be unsound --
  :func:`measure_execution_times` verifies this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.appmodel.implementation import FiringContext
from repro.appmodel.model import ApplicationModel
from repro.exceptions import GraphError, SimulationError
from repro.sdf.repetition import repetition_vector


@dataclass
class ExecutionTimeRecord:
    """Cycle statistics of one actor over a measurement run."""

    actor: str
    firings: int = 0
    total_cycles: int = 0
    min_cycles: Optional[int] = None
    max_cycles: Optional[int] = None

    def add(self, cycles: int) -> None:
        self.firings += 1
        self.total_cycles += cycles
        if self.min_cycles is None or cycles < self.min_cycles:
            self.min_cycles = cycles
        if self.max_cycles is None or cycles > self.max_cycles:
            self.max_cycles = cycles

    @property
    def average_cycles(self) -> float:
        if self.firings == 0:
            return 0.0
        return self.total_cycles / self.firings


@dataclass
class MeasuredTimes:
    """Measurement result over a whole application."""

    records: Dict[str, ExecutionTimeRecord] = field(default_factory=dict)

    def measured_wcet(self) -> Dict[str, int]:
        """Per-actor maximum observed cycles (the 'expected' model input)."""
        return {
            name: rec.max_cycles or 0 for name, rec in self.records.items()
        }

    def record(self, actor: str) -> ExecutionTimeRecord:
        return self.records[actor]


def measure_execution_times(
    app: ApplicationModel,
    iterations: int,
    pe_type_of: Optional[Dict[str, str]] = None,
    check_wcet: bool = True,
) -> MeasuredTimes:
    """Functionally execute ``iterations`` graph iterations and record times.

    The graph is executed untimed (sequential, dependency-driven) -- only
    the per-firing cycle counts matter here, not their overlap.  Token
    *values* flow through explicit edges; implicit edges are counted but
    carry no values.

    Raises
    ------
    SimulationError
        When a firing reports more cycles than its implementation's WCET
        metric (and ``check_wcet``), or when the actor produces a wrong
        number of tokens.
    """
    app.validate()
    if not app.is_functional():
        raise GraphError(
            f"application {app.name!r} has no functional model to measure"
        )

    graph = app.graph
    q = repetition_vector(graph)
    explicit = {e.name for e in graph.explicit_edges()}

    impl_of = {}
    for actor in graph:
        impl = None
        if pe_type_of and actor.name in pe_type_of:
            impl = app.implementation_for(actor.name, pe_type_of[actor.name])
        else:
            candidates = [
                i for i in app.implementations_of(actor.name)
                if i.function is not None
            ]
            impl = candidates[0] if candidates else None
        if impl is None or impl.function is None:
            raise GraphError(
                f"no functional implementation for actor {actor.name!r}"
            )
        impl_of[actor.name] = impl

    counts = {e.name: e.initial_tokens for e in graph.edges}
    values: Dict[str, List[object]] = {name: [] for name in explicit}
    states: Dict[str, Dict[str, object]] = {a.name: {} for a in graph}
    firing_index = {a.name: 0 for a in graph}

    # Initial token values on explicit edges come from init functions.
    for actor in graph:
        impl = impl_of[actor.name]
        initial_values = {}
        if impl.init_function is not None:
            initial_values = impl.init_function(states[actor.name])
        for edge in graph.out_edges(actor.name):
            if edge.name not in explicit or edge.initial_tokens == 0:
                continue
            provided = initial_values.get(edge.name)
            if provided is None:
                raise GraphError(
                    f"edge {edge.name!r} carries {edge.initial_tokens} "
                    f"initial token(s) but the init function of "
                    f"{actor.name!r} provides no values for it"
                )
            if len(provided) != edge.initial_tokens:
                raise GraphError(
                    f"init function of {actor.name!r} provided "
                    f"{len(provided)} token(s) for {edge.name!r}, expected "
                    f"{edge.initial_tokens}"
                )
            values[edge.name].extend(provided)

    measured = MeasuredTimes(
        records={a.name: ExecutionTimeRecord(a.name) for a in graph}
    )
    remaining = {a.name: q[a.name] * iterations for a in graph}

    progress = True
    while progress and any(remaining.values()):
        progress = False
        for actor in graph:
            name = actor.name
            while remaining[name] > 0 and all(
                counts[e.name] >= e.consumption
                for e in graph.in_edges(name)
            ):
                context = FiringContext(
                    inputs={},
                    state=states[name],
                    firing_index=firing_index[name],
                )
                for e in graph.in_edges(name):
                    counts[e.name] -= e.consumption
                    if e.name in explicit:
                        context.inputs[e.name] = [
                            values[e.name].pop(0)
                            for _ in range(e.consumption)
                        ]
                impl = impl_of[name]
                output = impl.fire(context)
                if check_wcet and output.cycles > impl.wcet:
                    raise SimulationError(
                        f"firing {firing_index[name]} of {name!r} took "
                        f"{output.cycles} cycles, above the declared WCET "
                        f"{impl.wcet} -- the throughput guarantee would be "
                        "unsound; fix the WCET metric or the cost model"
                    )
                for e in graph.out_edges(name):
                    counts[e.name] += e.production
                    if e.name in explicit:
                        produced = output.outputs.get(e.name)
                        if produced is None or len(produced) != e.production:
                            raise SimulationError(
                                f"actor {name!r} produced "
                                f"{0 if produced is None else len(produced)} "
                                f"token(s) on {e.name!r}, expected "
                                f"{e.production}"
                            )
                        values[e.name].extend(produced)
                measured.records[name].add(output.cycles)
                firing_index[name] += 1
                remaining[name] -= 1
                progress = True

    if any(remaining.values()):
        raise SimulationError(
            f"functional execution of {app.name!r} deadlocked with "
            f"pending firings {remaining}"
        )
    return measured
