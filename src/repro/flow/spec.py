"""Declarative flow scenarios (FlowSpec).

A *FlowSpec* is a small JSON- or TOML-loadable document that names
everything one run of the automated flow needs: the case-study input,
the architecture template parameters, the throughput constraint, the
mapping effort, and the per-stage strategy choices of the pluggable
mapping pipeline (:mod:`repro.mapping.pipeline`).  It is the scenario
format behind ``python -m repro run --spec scenario.toml`` and
:meth:`repro.flow.design_flow.DesignFlow.from_spec`.

A complete TOML example::

    name = "mjpeg-spiral"

    [app]
    sequence = "gradient"   # test-set name, or "synthetic"
    quality = 75
    frames = 2

    [architecture]
    tiles = 4
    interconnect = "noc"    # "fsl" | "noc"
    with_ca = false

    [mapping]
    constraint = "1/9000"   # iterations/cycle; omit for best effort
    effort = "normal"
    binding = "spiral"      # greedy | spiral | ga
    buffer_policy = "exponential"
    seed = 7

    [mapping.fixed]
    VLD = "tile0"

Unknown keys are rejected so a typo cannot silently fall back to a
default strategy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.arch.template import architecture_from_template
from repro.exceptions import ReproError
from repro.mapping.pipeline import MappingEffort, StrategyTuple


class FlowSpecError(ReproError):
    """Raised for malformed or unloadable FlowSpec documents."""


@dataclass(frozen=True)
class AppSpec:
    """Which case-study input to decode (``[app]``)."""

    sequence: str = "gradient"
    quality: Optional[int] = None
    frames: int = 2


@dataclass(frozen=True)
class ArchSpec:
    """Template parameters of the platform (``[architecture]``)."""

    tiles: int = 2
    interconnect: str = "fsl"
    with_ca: bool = False
    instruction_kb: int = 128
    data_kb: int = 128
    slave_instruction_kb: Optional[int] = None
    slave_data_kb: Optional[int] = None


@dataclass(frozen=True)
class FlowSpec:
    """One declarative scenario: app + architecture + mapping choices."""

    name: str = "scenario"
    app: AppSpec = field(default_factory=AppSpec)
    architecture: ArchSpec = field(default_factory=ArchSpec)
    constraint: Optional[Fraction] = None
    effort: str = "normal"
    fixed: Dict[str, str] = field(default_factory=dict)
    strategies: StrategyTuple = field(default_factory=StrategyTuple)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowSpec":
        """Build and validate a spec from a parsed document."""
        data = dict(data)
        name = _take(data, "name", str, default="scenario")
        app = _section(data, "app", _parse_app)
        architecture = _section(data, "architecture", _parse_arch)
        mapping = dict(_take(data, "mapping", dict, default={}))
        if data:
            raise FlowSpecError(
                f"unknown top-level key(s) in flow spec: {sorted(data)}"
            )

        constraint = _parse_constraint(
            _take(mapping, "constraint", (str, int), default=None)
        )
        effort = _take(mapping, "effort", str, default="normal")
        try:
            MappingEffort.of(effort)
        except ValueError as error:
            raise FlowSpecError(str(error)) from None
        fixed = dict(_take(mapping, "fixed", dict, default={}))
        for actor, tile in fixed.items():
            if not isinstance(actor, str) or not isinstance(tile, str):
                raise FlowSpecError(
                    "[mapping.fixed] must map actor names to tile names"
                )
        strategies = StrategyTuple(
            binding=_take(mapping, "binding", str, default="greedy"),
            routing=_take(mapping, "routing", str, default="xy"),
            buffer_policy=_take(
                mapping, "buffer_policy", str, default="linear"
            ),
            scheduling=_take(
                mapping, "scheduling", str, default="static-order"
            ),
            seed=_take(mapping, "seed", int, default=None),
        )
        try:
            strategies.validate()
        except ValueError as error:
            raise FlowSpecError(str(error)) from None
        if mapping:
            raise FlowSpecError(
                f"unknown [mapping] key(s) in flow spec: {sorted(mapping)}"
            )
        return cls(
            name=name,
            app=app,
            architecture=architecture,
            constraint=constraint,
            effort=effort,
            fixed=fixed,
            strategies=strategies,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FlowSpec":
        return load_flow_spec(path)

    # ------------------------------------------------------------------
    # realization
    # ------------------------------------------------------------------
    def build_application(self):
        """Instantiate the case-study application this spec names."""
        return build_case_study_app(
            self.app.sequence,
            quality=self.app.quality,
            frames=self.app.frames,
        )

    def build_architecture(self):
        """Instantiate the template architecture this spec names."""
        a = self.architecture
        return architecture_from_template(
            a.tiles,
            a.interconnect,
            with_ca=a.with_ca,
            instruction_kb=a.instruction_kb,
            data_kb=a.data_kb,
            slave_instruction_kb=a.slave_instruction_kb,
            slave_data_kb=a.slave_data_kb,
        )

    def describe(self) -> str:
        bits = [
            f"scenario {self.name!r}:",
            f"  app: {self.app.sequence} "
            f"(quality {self.app.quality or 'default'}, "
            f"{self.app.frames} frame(s))",
            f"  architecture: {self.architecture.tiles} tile(s), "
            f"{self.architecture.interconnect}"
            + (" +CA" if self.architecture.with_ca else ""),
            f"  mapping: {self.strategies.build_pipeline().describe()}, "
            f"effort {self.effort}",
        ]
        if self.constraint is not None:
            bits.append(f"  constraint: {self.constraint} iterations/cycle")
        if self.fixed:
            pins = ", ".join(
                f"{a}->{t}" for a, t in sorted(self.fixed.items())
            )
            bits.append(f"  pinned: {pins}")
        return "\n".join(bits)


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def _take(data: Dict[str, Any], key: str, kinds, default=None):
    if key not in data:
        return default
    value = data.pop(key)
    if value is None:
        return default
    accepted = kinds if isinstance(kinds, tuple) else (kinds,)
    expected = "/".join(k.__name__ for k in accepted)
    # bool subclasses int: reject it explicitly wherever int is accepted
    # but bool is not, or `constraint = true` would parse as Fraction(1)
    bad_bool = (
        isinstance(value, bool) and bool not in accepted and int in accepted
    )
    if bad_bool or not isinstance(value, accepted):
        raise FlowSpecError(
            f"flow spec key {key!r} must be {expected}, "
            f"got {type(value).__name__}"
        )
    return value


def _section(data: Dict[str, Any], key: str, parser):
    section = dict(_take(data, key, dict, default={}))
    parsed = parser(section)
    if section:
        raise FlowSpecError(
            f"unknown [{key}] key(s) in flow spec: {sorted(section)}"
        )
    return parsed


def _parse_app(section: Dict[str, Any]) -> AppSpec:
    return AppSpec(
        sequence=_take(section, "sequence", str, default="gradient"),
        quality=_take(section, "quality", int, default=None),
        frames=_take(section, "frames", int, default=2),
    )


def _parse_arch(section: Dict[str, Any]) -> ArchSpec:
    return ArchSpec(
        tiles=_take(section, "tiles", int, default=2),
        interconnect=_take(section, "interconnect", str, default="fsl"),
        with_ca=_take(section, "with_ca", bool, default=False),
        instruction_kb=_take(section, "instruction_kb", int, default=128),
        data_kb=_take(section, "data_kb", int, default=128),
        slave_instruction_kb=_take(
            section, "slave_instruction_kb", int, default=None
        ),
        slave_data_kb=_take(section, "slave_data_kb", int, default=None),
    )


def _parse_constraint(value) -> Optional[Fraction]:
    if value is None:
        return None
    try:
        return Fraction(value)
    except (ValueError, ZeroDivisionError):
        raise FlowSpecError(
            f"invalid constraint {value!r}; expected a fraction like "
            "'1/6000'"
        ) from None


def load_flow_spec(path: Union[str, Path]) -> FlowSpec:
    """Load a FlowSpec document from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise FlowSpecError(f"cannot read flow spec {path}: {error}") \
            from None
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FlowSpecError(
                f"invalid JSON flow spec {path}: {error}"
            ) from None
    elif suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - py3.10 path
            try:
                import tomli as tomllib  # noqa: F401 (same API)
            except ModuleNotFoundError:
                raise FlowSpecError(
                    "TOML flow specs need Python 3.11+ (tomllib) or the "
                    "'tomli' package; use the JSON form otherwise"
                ) from None
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as error:
            raise FlowSpecError(
                f"invalid TOML flow spec {path}: {error}"
            ) from None
    else:
        raise FlowSpecError(
            f"unsupported flow spec format {suffix or path.name!r}; "
            "use .toml or .json"
        )
    if not isinstance(data, dict):
        raise FlowSpecError(
            f"flow spec {path} must contain a table/object at the top level"
        )
    return FlowSpec.from_dict(data)


def build_case_study_app(
    sequence: str, quality: Optional[int] = None, frames: int = 2
):
    """Build the MJPEG case-study application for one test sequence.

    ``sequence`` is a name from
    :func:`repro.mjpeg.test_set_sequences` or ``"synthetic"``.  The
    default quality follows the benchmark conventions: 75 for the
    structured sequences, 98 for the high-entropy synthetic one.
    """
    from repro.mjpeg import (
        build_mjpeg_application,
        encode_sequence,
        synthetic_sequence,
        test_set_sequences,
    )

    if sequence == "synthetic":
        encoded_frames = synthetic_sequence(n_frames=frames)
        quality = quality or 98
    else:
        sequences = test_set_sequences(n_frames=frames)
        if sequence not in sequences:
            raise ReproError(
                f"unknown sequence {sequence!r}; pick from "
                f"{sorted(sequences) + ['synthetic']}"
            )
        encoded_frames = sequences[sequence]
        quality = quality or 75
    encoded = encode_sequence(encoded_frames, quality=quality, h=4, v=2)
    return build_mjpeg_application(encoded)
