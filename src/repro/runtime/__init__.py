"""repro.runtime -- the run-time platform management layer.

Design time builds per-application *operating-point libraries* (Pareto
fronts of precomputed mappings, :mod:`repro.runtime.library`); run time
*selects* from them: :class:`PlatformManager` admits, departs, and
migrates applications against one long-lived architecture, tracking
residual tile/memory/link capacity (:mod:`repro.runtime.residual`) and
journaling every transition for byte-identical restart replay
(:mod:`repro.runtime.journal`).  Served over HTTP as the ``/v1/platform``
endpoints (:mod:`repro.service`).
"""

from repro.exceptions import (
    AdmissionError,
    PlatformError,
    UnknownAppError,
)
from repro.runtime.journal import EVENT_KIND, PlatformJournal
from repro.runtime.library import (
    LibraryBuild,
    build_library,
    library_key,
    library_key_for,
)
from repro.runtime.manager import (
    MigrationPolicy,
    PlacedApp,
    PlatformManager,
)
from repro.runtime.points import (
    LIBRARY_KIND,
    POINT_KIND,
    ChannelFootprint,
    OperatingPoint,
    OperatingPointLibrary,
    operating_point_from_result,
    transfer_cycles,
)
from repro.runtime.residual import (
    ResidualPlatform,
    ResourceClaim,
    find_placement,
)

__all__ = [
    "AdmissionError",
    "ChannelFootprint",
    "EVENT_KIND",
    "LIBRARY_KIND",
    "LibraryBuild",
    "MigrationPolicy",
    "OperatingPoint",
    "OperatingPointLibrary",
    "POINT_KIND",
    "PlacedApp",
    "PlatformError",
    "PlatformJournal",
    "PlatformManager",
    "ResidualPlatform",
    "ResourceClaim",
    "UnknownAppError",
    "build_library",
    "find_placement",
    "library_key",
    "library_key_for",
    "operating_point_from_result",
    "transfer_cycles",
]
