"""Test content for the case study.

Five structured "real-life" sequences (the paper uses 5 test sequences)
plus the synthetic random sequence.  Structured content quantizes to few
nonzero coefficients -- decoding runs well below the WCET -- while the
synthetic sequence is high-entropy noise that keeps nearly every
coefficient alive and drives the decoder toward its worst case, which is
exactly the spread Fig. 6 shows.

All generators are deterministic (seeded) so benchmark runs reproduce.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np


def _frames(builder: Callable[[int, np.ndarray, np.ndarray], np.ndarray],
            n_frames: int, width: int, height: int) -> List[np.ndarray]:
    ys, xs = np.mgrid[0:height, 0:width]
    return [
        builder(t, xs, ys).astype(np.uint8) for t in range(n_frames)
    ]


def gradient_sequence(n_frames: int = 4, width: int = 64,
                      height: int = 64) -> List[np.ndarray]:
    """Smooth moving diagonal gradients (very low entropy)."""

    def build(t, xs, ys):
        r = (xs * 2 + t * 16) % 256
        g = (ys * 2 + t * 8) % 256
        b = ((xs + ys) + t * 4) % 256
        return np.stack([r, g, b], axis=-1)

    return _frames(build, n_frames, width, height)


def photo_sequence(n_frames: int = 4, width: int = 64,
                   height: int = 64, seed: int = 11) -> List[np.ndarray]:
    """Photo-like content: smoothed random texture panning over time."""
    rng = np.random.default_rng(seed)
    big = rng.integers(0, 256, size=(height * 2, width * 2, 3))
    # cheap separable smoothing to create natural-image statistics
    kernel = np.array([1.0, 4.0, 6.0, 4.0, 1.0])
    kernel /= kernel.sum()
    smooth = big.astype(np.float64)
    for axis in (0, 1):
        smooth = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), axis, smooth
        )
    frames = []
    for t in range(n_frames):
        dx, dy = 3 * t, 2 * t
        frames.append(
            np.clip(
                smooth[dy:dy + height, dx:dx + width], 0, 255
            ).astype(np.uint8)
        )
    return frames


def checkerboard_sequence(n_frames: int = 4, width: int = 64,
                          height: int = 64) -> List[np.ndarray]:
    """Hard-edged checkerboard with a moving phase (mid entropy)."""

    def build(t, xs, ys):
        cell = 8
        pattern = (((xs + t * 2) // cell + (ys + t) // cell) % 2) * 255
        return np.stack([pattern, pattern, pattern], axis=-1)

    return _frames(build, n_frames, width, height)


def text_sequence(n_frames: int = 4, width: int = 64,
                  height: int = 64, seed: int = 23) -> List[np.ndarray]:
    """Text-like content: dark strokes on a light page, scrolling."""
    rng = np.random.default_rng(seed)
    page = np.full((height * 2, width, 3), 235, dtype=np.uint8)
    for row in range(4, height * 2 - 4, 6):
        length = int(rng.integers(width // 2, width - 4))
        start = int(rng.integers(2, width - length))
        thickness = int(rng.integers(1, 3))
        page[row:row + thickness, start:start + length] = 25
    frames = []
    for t in range(n_frames):
        offset = (t * 4) % height
        frames.append(page[offset:offset + height].copy())
    return frames


def blobs_sequence(n_frames: int = 4, width: int = 64,
                   height: int = 64, seed: int = 37) -> List[np.ndarray]:
    """Moving soft-edged color blobs (animation-like content)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 1, size=(5, 2))
    velocities = rng.uniform(-0.06, 0.06, size=(5, 2))
    colors = rng.integers(64, 256, size=(5, 3))
    ys, xs = np.mgrid[0:height, 0:width]
    frames = []
    for t in range(n_frames):
        canvas = np.zeros((height, width, 3), dtype=np.float64)
        for index in range(len(centers)):
            cy = (centers[index, 0] + velocities[index, 0] * t) % 1.0
            cx = (centers[index, 1] + velocities[index, 1] * t) % 1.0
            distance2 = (
                (ys / height - cy) ** 2 + (xs / width - cx) ** 2
            )
            weight = np.exp(-distance2 / 0.02)
            canvas += weight[..., None] * colors[index]
        frames.append(np.clip(canvas, 0, 255).astype(np.uint8))
    return frames


def synthetic_sequence(n_frames: int = 2, width: int = 64,
                       height: int = 64, seed: int = 5) -> List[np.ndarray]:
    """Uniform random noise: the high-entropy worst-case driver."""
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=(height, width, 3)).astype(np.uint8)
        for _ in range(n_frames)
    ]


#: The five "real-life" test sequences of the case study, by name.
SEQUENCE_BUILDERS: Dict[str, Callable[..., List[np.ndarray]]] = {
    "gradient": gradient_sequence,
    "photo": photo_sequence,
    "checkerboard": checkerboard_sequence,
    "text": text_sequence,
    "blobs": blobs_sequence,
}


def test_set_sequences(n_frames: int = 4, width: int = 64,
                       height: int = 64) -> Dict[str, List[np.ndarray]]:
    """All five test sequences, keyed by name."""
    return {
        name: builder(n_frames=n_frames, width=width, height=height)
        for name, builder in SEQUENCE_BUILDERS.items()
    }
