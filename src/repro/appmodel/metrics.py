"""Metric records for actor implementations.

The tool flow uses these metrics to (a) size each tile's instruction and
data memories automatically and (b) feed SDF3's worst-case throughput
analysis (paper Section 3: "These metrics include the Worst-Case Execution
Time (WCET), required memory sizes, and the size of communicated tokens").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError


@dataclass(frozen=True)
class MemoryRequirements:
    """Memory footprint of one actor implementation, in bytes.

    Instruction and data requirements are kept separate "in order to
    facilitate processing elements that use a Harvard architecture"
    (Section 3).
    """

    instruction_bytes: int = 0
    data_bytes: int = 0

    def __post_init__(self) -> None:
        if self.instruction_bytes < 0 or self.data_bytes < 0:
            raise GraphError("memory requirements must be >= 0")

    @property
    def total_bytes(self) -> int:
        return self.instruction_bytes + self.data_bytes

    def __add__(self, other: "MemoryRequirements") -> "MemoryRequirements":
        return MemoryRequirements(
            self.instruction_bytes + other.instruction_bytes,
            self.data_bytes + other.data_bytes,
        )


@dataclass(frozen=True)
class ImplementationMetrics:
    """WCET and memory metrics of one actor implementation.

    ``wcet`` is in clock cycles of the target processing element.  A good
    estimate matters: the paper derives its throughput *guarantee* from
    these values, so they must upper-bound every real firing (the WCET
    harness in :mod:`repro.appmodel.wcet` checks this).
    """

    wcet: int
    memory: MemoryRequirements = MemoryRequirements()

    def __post_init__(self) -> None:
        if self.wcet < 0:
            raise GraphError(f"WCET must be >= 0, got {self.wcet}")
