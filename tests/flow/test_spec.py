"""Tests for the declarative FlowSpec layer (repro.flow.spec)."""

import json
from fractions import Fraction

import pytest

from repro.flow import DesignFlow, FlowSpec, FlowSpecError, load_flow_spec
from repro.mapping import StrategyTuple

MINIMAL = {"name": "minimal"}

FULL_TOML = """\
name = "mjpeg-ga"

[app]
sequence = "gradient"
quality = 80
frames = 2

[architecture]
tiles = 3
interconnect = "noc"
with_ca = false

[mapping]
constraint = "1/9000"
effort = "low"
binding = "ga"
buffer_policy = "exponential"
seed = 7

[mapping.fixed]
VLD = "tile0"
"""


class TestParsing:
    def test_defaults(self):
        spec = FlowSpec.from_dict(dict(MINIMAL))
        assert spec.name == "minimal"
        assert spec.app.sequence == "gradient"
        assert spec.architecture.tiles == 2
        assert spec.constraint is None
        assert spec.strategies == StrategyTuple()

    def test_full_toml_round_trip(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(FULL_TOML, encoding="utf-8")
        spec = load_flow_spec(path)
        assert spec.name == "mjpeg-ga"
        assert spec.app.quality == 80
        assert spec.architecture.interconnect == "noc"
        assert spec.constraint == Fraction(1, 9000)
        assert spec.effort == "low"
        assert spec.fixed == {"VLD": "tile0"}
        assert spec.strategies == StrategyTuple(
            binding="ga", buffer_policy="exponential", seed=7
        )

    def test_json_form(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "name": "json-spec",
                    "architecture": {"tiles": 3},
                    "mapping": {"binding": "spiral"},
                }
            ),
            encoding="utf-8",
        )
        spec = load_flow_spec(path)
        assert spec.name == "json-spec"
        assert spec.strategies.binding == "spiral"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(FlowSpecError, match="unknown top-level"):
            FlowSpec.from_dict({"name": "x", "aplication": {}})

    def test_unknown_mapping_key_rejected(self):
        with pytest.raises(FlowSpecError, match=r"unknown \[mapping\]"):
            FlowSpec.from_dict({"mapping": {"bindings": "ga"}})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(FlowSpecError, match="registered"):
            FlowSpec.from_dict({"mapping": {"binding": "quantum"}})

    def test_bad_constraint_rejected(self):
        with pytest.raises(FlowSpecError, match="constraint"):
            FlowSpec.from_dict({"mapping": {"constraint": "fast"}})

    def test_boolean_constraint_rejected(self):
        # bool subclasses int; `constraint = true` must not become
        # Fraction(1) (an absurd 1 iteration/cycle requirement)
        with pytest.raises(FlowSpecError, match="constraint"):
            FlowSpec.from_dict({"mapping": {"constraint": True}})

    def test_bad_effort_rejected(self):
        with pytest.raises(FlowSpecError, match="effort"):
            FlowSpec.from_dict({"mapping": {"effort": "heroic"}})

    def test_wrong_type_rejected(self):
        with pytest.raises(FlowSpecError, match="tiles"):
            FlowSpec.from_dict({"architecture": {"tiles": "three"}})

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("name: nope", encoding="utf-8")
        with pytest.raises(FlowSpecError, match="unsupported"):
            load_flow_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FlowSpecError, match="cannot read"):
            load_flow_spec(tmp_path / "absent.toml")

    def test_describe_mentions_strategies(self):
        spec = FlowSpec.from_dict(
            {"name": "d", "mapping": {"binding": "spiral"}}
        )
        text = spec.describe()
        assert "spiral" in text
        assert "d" in text


class TestRealization:
    def test_build_architecture_honours_template_params(self):
        spec = FlowSpec.from_dict(
            {
                "architecture": {
                    "tiles": 3,
                    "interconnect": "fsl",
                    "slave_data_kb": 64,
                }
            }
        )
        arch = spec.build_architecture()
        assert len(arch.tiles) == 3
        assert arch.tile("tile1").data_memory.capacity_bytes == 64 * 1024

    def test_from_spec_runs_the_flow(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "spec-flow"',
                    "[architecture]",
                    "tiles = 2",
                    "[mapping]",
                    'binding = "spiral"',
                    "[mapping.fixed]",
                    'VLD = "tile0"',
                ]
            ),
            encoding="utf-8",
        )
        flow = DesignFlow.from_spec(path)
        assert flow.pipeline is not None
        assert flow.pipeline.strategies.binding == "spiral"
        result = flow.run(iterations=4)
        assert result.guaranteed_throughput > 0
        assert result.mapping_result.mapping.actor_binding["VLD"] == "tile0"

    def test_from_spec_accepts_prebuilt_app(self):
        from tests.flow.test_dse_engine import build_chain_app

        spec = FlowSpec.from_dict({"architecture": {"tiles": 2}})
        flow = DesignFlow.from_spec(spec, app=build_chain_app())
        result = flow.run(measure=False)
        assert result.guaranteed_throughput > 0


class TestMultiApp:
    MULTI = {
        "name": "stb",
        "apps": [
            {"name": "decoder", "sequence": "gradient", "frames": 1,
             "constraint": "1/200000", "fixed": {"VLD": "tile0"}},
            {"name": "osd", "sequence": "checkerboard", "frames": 1},
        ],
        "architecture": {"tiles": 4},
        "mapping": {"constraint": "1/400000"},
    }

    def test_parses_apps_array(self):
        spec = FlowSpec.from_dict(dict(self.MULTI))
        assert spec.multi
        assert [a.effective_name for a in spec.apps] == ["decoder", "osd"]
        assert spec.app.sequence == "gradient"  # back-compat alias

    def test_per_app_overrides_fall_back_to_spec_level(self):
        spec = FlowSpec.from_dict(dict(self.MULTI))
        decoder, osd = spec.apps
        assert spec.constraint_for(decoder) == Fraction(1, 200000)
        assert spec.constraint_for(osd) == Fraction(1, 400000)
        assert spec.fixed_for(decoder) == {"VLD": "tile0"}
        assert spec.fixed_for(osd) is None

    def test_single_app_spec_is_not_multi(self):
        spec = FlowSpec.from_dict({"app": {"sequence": "gradient"}})
        assert not spec.multi
        assert spec.apps == (spec.app,)

    def test_app_and_apps_together_rejected(self):
        with pytest.raises(FlowSpecError, match="both"):
            FlowSpec.from_dict(
                {"app": {}, "apps": [{"sequence": "gradient"}]}
            )

    def test_empty_apps_rejected(self):
        with pytest.raises(FlowSpecError, match="at least one"):
            FlowSpec.from_dict({"apps": []})

    def test_duplicate_use_case_names_rejected(self):
        with pytest.raises(FlowSpecError, match="distinct"):
            FlowSpec.from_dict(
                {"apps": [{"sequence": "gradient"},
                          {"sequence": "gradient"}]}
            )

    def test_unknown_apps_key_rejected(self):
        with pytest.raises(FlowSpecError, match=r"\[\[apps\]\]"):
            FlowSpec.from_dict(
                {"apps": [{"sequence": "gradient", "quallity": 3}]}
            )

    def test_toml_array_of_tables_form(self, tmp_path):
        path = tmp_path / "multi.toml"
        path.write_text(
            "\n".join([
                'name = "multi"',
                "[[apps]]",
                'name = "decoder"',
                'sequence = "gradient"',
                "frames = 1",
                "[apps.fixed]",
                'VLD = "tile0"',
                "[[apps]]",
                'name = "osd"',
                'sequence = "checkerboard"',
                "frames = 1",
                "[architecture]",
                "tiles = 4",
            ]),
            encoding="utf-8",
        )
        spec = load_flow_spec(path)
        assert spec.multi
        assert spec.apps[0].fixed == {"VLD": "tile0"}
        assert spec.apps[1].fixed is None

    def test_build_application_refuses_multi(self):
        spec = FlowSpec.from_dict(dict(self.MULTI))
        with pytest.raises(FlowSpecError, match="FlowSession"):
            spec.build_application()
        apps = spec.build_applications()
        assert [a.name for a in apps] == ["decoder", "osd"]

    def test_describe_lists_every_use_case(self):
        spec = FlowSpec.from_dict(dict(self.MULTI))
        text = spec.describe()
        assert "use-case 'decoder'" in text
        assert "use-case 'osd'" in text

    def test_from_spec_honours_per_app_overrides(self):
        spec = FlowSpec.from_dict({
            "name": "pinned",
            "app": {"sequence": "gradient", "frames": 1,
                    "constraint": "1/9000",
                    "fixed": {"VLD": "tile0"}},
            "architecture": {"tiles": 2},
        })
        flow = DesignFlow.from_spec(spec)
        assert flow.constraint == Fraction(1, 9000)
        assert flow.fixed == {"VLD": "tile0"}


class TestDocumentRoundTrip:
    CASES = (
        {"name": "bare"},
        {
            "name": "rich",
            "app": {"sequence": "gradient", "frames": 1, "quality": 80,
                    "constraint": "1/9000", "fixed": {"VLD": "tile0"}},
            "architecture": {"tiles": 3, "interconnect": "noc",
                             "with_ca": True, "slave_data_kb": 64},
            "mapping": {"binding": "spiral", "effort": "high",
                        "constraint": "1/8000", "seed": 7,
                        "fixed": {"IDCT": "tile1"}},
        },
        {
            "name": "multi",
            "apps": [
                {"name": "decoder", "sequence": "gradient", "frames": 1,
                 "fixed": {"VLD": "tile0"}},
                {"name": "osd", "sequence": "checkerboard", "frames": 1},
            ],
            "architecture": {"tiles": 4},
        },
    )

    def test_to_document_is_the_inverse_of_from_dict(self):
        """The service client ships specs as documents; nothing may be
        lost or invented on the way through."""
        for case in self.CASES:
            spec = FlowSpec.from_dict(dict(case))
            document = spec.to_document()
            assert FlowSpec.from_dict(document) == spec
            # the document survives a JSON round trip untouched
            assert json.loads(json.dumps(document)) == document

    def test_document_keeps_the_request_key(self):
        from repro.flow import flow_request_key

        for case in self.CASES:
            spec = FlowSpec.from_dict(dict(case))
            again = FlowSpec.from_dict(spec.to_document())
            assert flow_request_key(again) == flow_request_key(spec)
