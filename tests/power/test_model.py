"""Tests for the power model: scaling, interconnect energy, counters."""

from fractions import Fraction

import pytest

from repro.arch import architecture_from_template, master_tile, slave_tile
from repro.arch.area import tile_area
from repro.exceptions import PowerError, ReproError
from repro.power import (
    BASE_TECH_NM,
    TECH_NODES,
    PowerCounters,
    PowerModel,
    words_per_token,
)
from repro.power.model import (
    FSL_WORD_PJ,
    NOC_HOP_PJ_PER_WORD,
    NOC_INJECTION_PJ_PER_WORD,
    STATIC_UW_PER_BRAM,
    STATIC_UW_PER_SLICE,
)


class TestWordsPerToken:
    def test_rounds_up_to_word_granularity(self):
        assert words_per_token(1) == 1
        assert words_per_token(4) == 1
        assert words_per_token(5) == 2
        assert words_per_token(16) == 4

    def test_degenerate_sizes(self):
        assert words_per_token(0) == 0
        assert words_per_token(-3) == 0


class TestPowerModel:
    def test_default_is_base_node(self):
        model = PowerModel()
        assert model.tech_nm == BASE_TECH_NM
        assert model.dynamic_scale == 1
        assert model.static_scale == 1

    def test_unknown_node_rejected_with_typed_error(self):
        with pytest.raises(PowerError, match="unknown technology node"):
            PowerModel(tech_nm=7)
        assert issubclass(PowerError, ReproError)

    def test_invalid_clock_rejected(self):
        with pytest.raises(PowerError, match="clock period"):
            PowerModel(clock_ns=0)

    def test_scaling_trends_are_monotone(self):
        """Post-Dennard: smaller nodes switch cheaper but leak more."""
        nodes = sorted(TECH_NODES, reverse=True)  # 45 -> 16
        dynamic = [PowerModel(tech_nm=nm).dynamic_scale for nm in nodes]
        static = [PowerModel(tech_nm=nm).static_scale for nm in nodes]
        assert all(b < a for a, b in zip(dynamic, dynamic[1:]))
        assert all(b > a for a, b in zip(static, static[1:]))

    def test_values_are_exact_fractions(self):
        model = PowerModel(tech_nm=32)
        tile = slave_tile("s")
        static = model.tile_static_uw(tile)
        assert isinstance(static, Fraction)
        area = tile_area(tile)
        expected = (
            STATIC_UW_PER_SLICE * area.slices
            + STATIC_UW_PER_BRAM * area.brams
        ) * Fraction(4, 3)
        assert static == expected

    def test_master_draws_more_than_slave(self):
        model = PowerModel()
        assert model.tile_dynamic_uw(
            master_tile("m")
        ) > model.tile_dynamic_uw(slave_tile("s"))

    def test_ca_adds_dynamic_power(self):
        model = PowerModel()
        plain = model.tile_dynamic_uw(slave_tile("s"))
        with_ca = model.tile_dynamic_uw(slave_tile("s", with_ca=True))
        assert with_ca > plain

    def test_cache_token_is_deterministic_and_distinct(self):
        assert PowerModel().cache_token() == PowerModel().cache_token()
        assert (
            PowerModel(tech_nm=22).cache_token()
            != PowerModel().cache_token()
        )
        assert (
            PowerModel(clock_ns=5).cache_token()
            != PowerModel().cache_token()
        )


class TestInterconnectEnergy:
    def test_same_tile_transfer_is_free(self):
        arch = architecture_from_template(2, "fsl")
        model = PowerModel()
        assert (
            model.word_energy_pj(arch.interconnect, "tile0", "tile0")
            == 0
        )

    def test_fsl_word_cost_is_flat(self):
        arch = architecture_from_template(3, "fsl")
        model = PowerModel()
        assert (
            model.word_energy_pj(arch.interconnect, "tile0", "tile2")
            == FSL_WORD_PJ
        )

    def test_noc_cost_grows_with_hop_distance(self):
        arch = architecture_from_template(4, "noc")
        model = PowerModel()
        near = model.word_energy_pj(arch.interconnect, "tile0", "tile1")
        far = model.word_energy_pj(arch.interconnect, "tile0", "tile3")
        assert near < far
        hops = arch.interconnect.hop_distance("tile0", "tile1")
        assert near == (
            NOC_INJECTION_PJ_PER_WORD + NOC_HOP_PJ_PER_WORD * hops
        )

    def test_transfer_energy_counts_tokens_and_words(self):
        arch = architecture_from_template(2, "fsl")
        model = PowerModel()
        one_word = model.transfer_energy_pj(
            arch.interconnect, "tile0", "tile1", tokens=1, token_size=4
        )
        # 8-byte tokens need two words; 3 tokens triple it
        assert model.transfer_energy_pj(
            arch.interconnect, "tile0", "tile1", tokens=3, token_size=8
        ) == 6 * one_word

    def test_technology_scales_transfer_energy(self):
        arch = architecture_from_template(2, "fsl")
        base = PowerModel().transfer_energy_pj(
            arch.interconnect, "tile0", "tile1", 10, 4
        )
        scaled = PowerModel(tech_nm=22).transfer_energy_pj(
            arch.interconnect, "tile0", "tile1", 10, 4
        )
        assert scaled == base / 2


class TestCounters:
    def test_record_and_snapshot(self):
        counters = PowerCounters()
        counters.record("platform")
        counters.record("application")
        counters.record("application")
        assert counters.snapshot() == {
            "platform": 1,
            "application": 2,
        }
