"""The application model: graph + implementations + constraint.

This is the flow's first input (Fig. 1, "Application Model / actor.c"): the
SDF graph, a C-based (here: Python-callable) implementation per actor, the
per-implementation metrics, and the application's throughput constraint.
The model is the common interchange object consumed by both the mapping
side (SDF3 role) and the platform-generation side (MAMPS role) -- the
"common input format" that Section 2 credits with removing manual
translation errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.appmodel.implementation import ActorImplementation
from repro.exceptions import GraphError
from repro.sdf.graph import SDFGraph, validate_graph
from repro.sdf.repetition import repetition_vector


@dataclass
class ApplicationModel:
    """A throughput-constrained application.

    Parameters
    ----------
    graph:
        The application's SDF graph.  Edge ``token_size`` fields must be
        set on every explicit edge (they drive serialization costs).
    implementations:
        All actor implementations; each actor needs at least one.
    throughput_constraint:
        Required graph iterations per clock cycle (e.g. MCUs per cycle for
        the MJPEG decoder).  ``None`` means best-effort mapping.
    name:
        Defaults to the graph name.
    """

    graph: SDFGraph
    implementations: List[ActorImplementation] = field(default_factory=list)
    throughput_constraint: Optional[Fraction] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.graph.name
        self._by_actor: Dict[str, List[ActorImplementation]] = {}
        for impl in self.implementations:
            self._by_actor.setdefault(impl.actor, []).append(impl)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def implementations_of(self, actor: str) -> Tuple[ActorImplementation, ...]:
        """All implementations of ``actor`` (any PE type)."""
        return tuple(self._by_actor.get(actor, ()))

    def implementation_for(
        self, actor: str, pe_type: str
    ) -> Optional[ActorImplementation]:
        """The implementation of ``actor`` for ``pe_type``, or None."""
        for impl in self._by_actor.get(actor, ()):
            if impl.pe_type == pe_type:
                return impl
        return None

    def supported_pe_types(self, actor: str) -> Tuple[str, ...]:
        return tuple(i.pe_type for i in self._by_actor.get(actor, ()))

    def wcet(self, actor: str, pe_type: str) -> int:
        impl = self.implementation_for(actor, pe_type)
        if impl is None:
            raise GraphError(
                f"actor {actor!r} has no implementation for PE type "
                f"{pe_type!r} (available: {self.supported_pe_types(actor)})"
            )
        return impl.wcet

    def add_implementation(self, impl: ActorImplementation) -> None:
        if impl.actor not in self.graph:
            raise GraphError(
                f"implementation {impl.name!r} targets unknown actor "
                f"{impl.actor!r}"
            )
        self.implementations.append(impl)
        self._by_actor.setdefault(impl.actor, []).append(impl)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def timed_graph(
        self, pe_type_of: Optional[Dict[str, str]] = None
    ) -> SDFGraph:
        """Copy of the graph with execution times taken from the WCETs.

        ``pe_type_of`` selects which implementation's WCET to use per actor
        (actor name -> PE type); by default the first implementation wins.
        This is the graph handed to the throughput analysis.
        """
        times: Dict[str, int] = {}
        for actor in self.graph:
            if pe_type_of and actor.name in pe_type_of:
                times[actor.name] = self.wcet(
                    actor.name, pe_type_of[actor.name]
                )
            else:
                impls = self.implementations_of(actor.name)
                if not impls:
                    raise GraphError(
                        f"actor {actor.name!r} has no implementation"
                    )
                times[actor.name] = impls[0].wcet
        return self.graph.with_execution_times(times)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the model is complete enough for the flow.

        * graph well-formed, connected, consistent;
        * every actor has at least one implementation;
        * implementations reference existing actors and explicit edges;
        * explicit edges carry a token size;
        * functional implementations exist either for all actors or none
          (a half-functional application cannot be simulated meaningfully).
        """
        validate_graph(self.graph)
        repetition_vector(self.graph)  # raises if inconsistent

        for actor in self.graph:
            if not self.implementations_of(actor.name):
                raise GraphError(
                    f"actor {actor.name!r} has no implementation"
                )

        explicit = {e.name for e in self.graph.explicit_edges()}
        for impl in self.implementations:
            if impl.actor not in self.graph:
                raise GraphError(
                    f"implementation {impl.name!r} targets unknown actor "
                    f"{impl.actor!r}"
                )
            for edge_name in impl.argument_order:
                if edge_name not in explicit:
                    raise GraphError(
                        f"implementation {impl.name!r} binds argument to "
                        f"{edge_name!r}, which is not an explicit edge"
                    )
                edge = self.graph.edge(edge_name)
                if impl.actor not in (edge.src, edge.dst):
                    raise GraphError(
                        f"implementation {impl.name!r} binds argument to "
                        f"edge {edge_name!r} not connected to actor "
                        f"{impl.actor!r}"
                    )

        for edge in self.graph.explicit_edges():
            if edge.token_size <= 0:
                raise GraphError(
                    f"explicit edge {edge.name!r} needs a positive token "
                    "size (it crosses the interconnect)"
                )

        functional = [
            i.actor for i in self.implementations if i.function is not None
        ]
        if functional and set(functional) != {a.name for a in self.graph}:
            missing = {a.name for a in self.graph} - set(functional)
            raise GraphError(
                "application is only partially functional; actors without "
                f"a functional model: {sorted(missing)}"
            )

    def is_functional(self) -> bool:
        """True when every actor has a functional implementation."""
        return all(
            any(i.function is not None for i in self.implementations_of(a.name))
            for a in self.graph
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`).

        Functional models are recorded by qualified name only; a decoded
        model is timing-only (it maps and analyzes identically -- see
        :mod:`repro.flow.fingerprint` -- but cannot be simulated).
        """
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ApplicationModel":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "application")
        return from_payload(payload)
