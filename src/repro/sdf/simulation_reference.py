"""Reference self-timed executor (the pre-incremental engine), retained.

This is the straightforward O(actors x edges)-per-step implementation the
incremental engine in :mod:`repro.sdf.simulation` replaced.  It re-scans
the whole graph after every event and keys its state on name-sorted
dictionaries -- slow, but simple enough to audit by eye.  It is kept as
the *oracle* for the differential test suite
(``tests/sdf/test_simulation_differential.py``) and for the simulation
benchmark (``benchmarks/bench_sim_hotpath.py``): the incremental engine
must produce exactly the same traces, token peaks, completion counts and
throughput results on randomized graphs, bindings and static orders.

Do not use this class in production code paths; it exists to keep the
fast engine honest.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from fractions import Fraction

from repro.exceptions import DeadlockError, GraphError, SimulationError
from repro.sdf.graph import SDFGraph, validate_graph
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import Firing, SimulationTrace


class ReferenceSelfTimedSimulator:
    """The retained full-rescan executor; see the module docstring.

    The constructor and public surface mirror
    :class:`repro.sdf.simulation.SelfTimedSimulator` (same parameters,
    same semantics); only the internals differ.
    """

    def __init__(
        self,
        graph: SDFGraph,
        auto_concurrency: Optional[int] = 1,
        processor_of: Optional[Dict[str, str]] = None,
        static_order: Optional[Dict[str, Sequence[str]]] = None,
        execution_time_of: Optional[Callable[[str, int], int]] = None,
        on_finish: Optional[Callable[[str, int], None]] = None,
        record_trace: bool = False,
    ) -> None:
        if auto_concurrency is not None and auto_concurrency < 1:
            raise GraphError("auto_concurrency must be >= 1 or None")
        self.graph = graph
        self.auto_concurrency = auto_concurrency
        self.processor_of = dict(processor_of or {})
        self.static_order = {
            proc: list(order) for proc, order in (static_order or {}).items()
        }
        self._execution_time_of = execution_time_of
        self._on_finish = on_finish
        self.record_trace = record_trace

        for proc, order in self.static_order.items():
            if not order:
                raise GraphError(f"static order for {proc!r} is empty")
            for actor in order:
                if actor not in graph:
                    raise GraphError(
                        f"static order for {proc!r} names unknown actor "
                        f"{actor!r}"
                    )
                if self.processor_of.get(actor) != proc:
                    raise GraphError(
                        f"actor {actor!r} appears in the static order of "
                        f"{proc!r} but is not bound to it"
                    )
        in_some_order = {
            a for order in self.static_order.values() for a in order
        }
        self._interleaved: Dict[str, List[str]] = {}
        for actor, proc in self.processor_of.items():
            if proc in self.static_order and actor not in in_some_order:
                self._interleaved.setdefault(proc, []).append(actor)

        for actor in graph:
            cap = (
                actor.concurrency
                if actor.concurrency is not None
                else auto_concurrency
            )
            if cap is None and not graph.in_edges(actor.name):
                raise GraphError(
                    f"actor {actor.name!r} has no input edges; unlimited "
                    "auto-concurrency would fire it infinitely often at "
                    "time 0 (add a self-edge or set a concurrency cap)"
                )

        self.reset()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the graph's initial state at time 0."""
        self.now = 0
        self.tokens: Dict[str, int] = {
            e.name: e.initial_tokens for e in self.graph.edges
        }
        self._ongoing: Dict[str, int] = {a.name: 0 for a in self.graph}
        self._completed: Dict[str, int] = {a.name: 0 for a in self.graph}
        self._started: Dict[str, int] = {a.name: 0 for a in self.graph}
        self._queue: List[Tuple[int, int, str, int]] = []
        self._seq = 0
        self._proc_busy_until: Dict[str, int] = {}
        self._order_pos: Dict[str, int] = {
            proc: 0 for proc in self.static_order
        }
        self._trace = SimulationTrace(
            max_tokens={e.name: e.initial_tokens for e in self.graph.edges},
            completed_count={a.name: 0 for a in self.graph},
        )

    @property
    def trace(self) -> SimulationTrace:
        """The recorded trace, with ``completed_count`` refreshed
        (mirrors the incremental engine's access-time snapshot)."""
        return self._finalize_trace()

    @property
    def completed(self) -> Dict[str, int]:
        return dict(self._completed)

    @property
    def started(self) -> Dict[str, int]:
        return dict(self._started)

    def ongoing_firings(self) -> List[Tuple[str, int]]:
        return sorted(
            (actor, end - self.now) for end, _seq, actor, _start in self._queue
        )

    def state_key(self) -> Tuple:
        """Hashable, time-normalized execution state (name-sorted form)."""
        token_part = tuple(sorted(self.tokens.items()))
        firing_part = tuple(self.ongoing_firings())
        order_part = tuple(
            sorted(
                (proc, pos % len(self.static_order[proc]))
                for proc, pos in self._order_pos.items()
            )
        )
        return (token_part, firing_part, order_part)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _duration(self, actor: str) -> int:
        index = self._started[actor]
        if self._execution_time_of is not None:
            duration = self._execution_time_of(actor, index)
        else:
            duration = self.graph.actor(actor).execution_time
        if duration < 0:
            raise SimulationError(
                f"negative execution time for firing {index} of {actor!r}"
            )
        return duration

    def _concurrency_cap(self, actor: str) -> Optional[int]:
        per_actor = self.graph.actor(actor).concurrency
        if per_actor is not None:
            return per_actor
        return self.auto_concurrency

    def _is_ready(self, actor: str) -> bool:
        cap = self._concurrency_cap(actor)
        if cap is not None and self._ongoing[actor] >= cap:
            return False
        for edge in self.graph.in_edges(actor):
            if self.tokens[edge.name] < edge.consumption:
                return False
        return True

    def _proc_free(self, proc: str) -> bool:
        return self._proc_busy_until.get(proc, 0) <= self.now

    def _start_firing(self, actor: str) -> None:
        for edge in self.graph.in_edges(actor):
            self.tokens[edge.name] -= edge.consumption
        duration = self._duration(actor)
        end = self.now + duration
        self._started[actor] += 1
        self._ongoing[actor] += 1
        heapq.heappush(self._queue, (end, self._seq, actor, self.now))
        self._seq += 1
        proc = self.processor_of.get(actor)
        if proc is not None:
            self._proc_busy_until[proc] = end

    def _finish_firing(self, actor: str, start: int) -> None:
        for edge in self.graph.out_edges(actor):
            self.tokens[edge.name] += edge.production
            if self.tokens[edge.name] > self._trace.max_tokens[edge.name]:
                self._trace.max_tokens[edge.name] = self.tokens[edge.name]
        self._ongoing[actor] -= 1
        completed_index = self._completed[actor]
        self._completed[actor] += 1
        if self.record_trace:
            self._trace.firings.append(Firing(actor, start, self.now))
        if self._on_finish is not None:
            self._on_finish(actor, completed_index)

    def _start_all_ready(self) -> List[str]:
        """Start every firing allowed right now (full-graph rescan)."""
        started: List[str] = []
        progress = True
        while progress:
            progress = False
            for proc, order in self.static_order.items():
                while self._proc_free(proc):
                    interleaved = next(
                        (
                            a
                            for a in self._interleaved.get(proc, ())
                            if self._is_ready(a)
                        ),
                        None,
                    )
                    if interleaved is not None:
                        self._start_firing(interleaved)
                        started.append(interleaved)
                        progress = True
                        continue
                    actor = order[self._order_pos[proc] % len(order)]
                    if not self._is_ready(actor):
                        break
                    self._start_firing(actor)
                    self._order_pos[proc] += 1
                    started.append(actor)
                    progress = True
            for actor in self.graph:
                name = actor.name
                proc = self.processor_of.get(name)
                if proc is not None and proc in self.static_order:
                    continue  # handled above
                while self._is_ready(name) and (
                    proc is None or self._proc_free(proc)
                ):
                    self._start_firing(name)
                    started.append(name)
                    progress = True
        return started

    def step(self) -> List[Tuple[str, int]]:
        self._start_all_ready()
        if not self._queue:
            return []
        end = self._queue[0][0]
        self.now = end
        finished: List[Tuple[str, int]] = []
        while self._queue and self._queue[0][0] == end:
            _end, _seq, actor, start = heapq.heappop(self._queue)
            self._finish_firing(actor, start)
            finished.append((actor, end))
        self._start_all_ready()
        return finished

    def _finalize_trace(self) -> SimulationTrace:
        # Fresh handout with a private snapshot (mirrors the incremental
        # engine): earlier handouts never mutate retroactively.
        return SimulationTrace(
            firings=self._trace.firings,
            max_tokens=self._trace.max_tokens,
            completed_count=dict(self._completed),
        )

    def run(
        self,
        max_time: Optional[int] = None,
        max_firings: Optional[int] = None,
        stop_when: Optional[
            Callable[["ReferenceSelfTimedSimulator"], bool]
        ] = None,
    ) -> SimulationTrace:
        if max_time is None and max_firings is None and stop_when is None:
            raise SimulationError(
                "run() needs max_time, max_firings or stop_when; self-timed "
                "execution of a live graph never quiesces on its own"
            )
        while True:
            finished = self.step()
            if not finished:
                return self._finalize_trace()
            if max_time is not None and self.now >= max_time:
                return self._finalize_trace()
            if max_firings is not None and (
                sum(self._completed.values()) >= max_firings
            ):
                return self._finalize_trace()
            if stop_when is not None and stop_when(self):
                return self._finalize_trace()

    def is_quiescent(self) -> bool:
        if self._queue:
            return False
        for actor in self.graph:
            name = actor.name
            proc = self.processor_of.get(name)
            if proc is not None and proc in self.static_order:
                order = self.static_order[proc]
                next_actor = order[self._order_pos[proc] % len(order)]
                is_interleaved = name in self._interleaved.get(proc, ())
                if (next_actor == name or is_interleaved) and self._is_ready(
                    name
                ):
                    return False
            elif self._is_ready(name) and (
                proc is None or self._proc_free(proc)
            ):
                return False
        return True


def reference_analyze_throughput(
    graph: SDFGraph,
    auto_concurrency: Optional[int] = 1,
    processor_of: Optional[Dict[str, str]] = None,
    static_order: Optional[Dict[str, Sequence[str]]] = None,
    reference_actor: Optional[str] = None,
    max_iterations: int = 10_000,
):
    """The pre-incremental state-space throughput analysis, verbatim.

    Returns a :class:`repro.sdf.throughput.ThroughputResult`; used by the
    differential tests and the hot-path benchmark as the oracle against
    which :func:`repro.sdf.throughput.analyze_throughput` must agree
    exactly (same ``Fraction``, same period, same transient).
    """
    from repro.sdf.deadlock import deadlock_report
    from repro.sdf.throughput import (
        ThroughputResult,
        UnboundedExecutionError,
    )

    validate_graph(graph)
    q = repetition_vector(graph)

    report = deadlock_report(graph)
    if report is not None:
        raise DeadlockError(report)

    sim = ReferenceSelfTimedSimulator(
        graph,
        auto_concurrency=auto_concurrency,
        processor_of=processor_of,
        static_order=static_order,
    )

    ref = reference_actor or graph.actors[0].name
    if ref not in graph:
        raise SimulationError(f"reference actor {ref!r} not in graph")
    q_ref = q[ref]

    seen: Dict[tuple, tuple] = {}  # state -> (iterations, time)
    iterations_done = 0

    while iterations_done < max_iterations:
        finished = sim.step()
        if not finished:
            raise DeadlockError(
                f"mapped graph {graph.name!r} blocked after "
                f"{iterations_done} iteration(s) at t={sim.now}; the "
                "static-order schedule or buffer sizes admit no execution"
            )
        completed_iterations = sim.completed[ref] // q_ref
        if completed_iterations > iterations_done:
            iterations_done = completed_iterations
            key = sim.state_key()
            if key in seen:
                prev_iterations, prev_time = seen[key]
                period = sim.now - prev_time
                iter_count = iterations_done - prev_iterations
                if period <= 0:
                    raise SimulationError(
                        f"graph {graph.name!r} completes {iter_count} "
                        "iteration(s) in zero time; all cycle times are "
                        "zero -- throughput is unbounded"
                    )
                return ThroughputResult(
                    throughput=Fraction(iter_count, period),
                    period=period,
                    iterations_per_period=iter_count,
                    transient_iterations=prev_iterations,
                )
            seen[key] = (iterations_done, sim.now)

    raise UnboundedExecutionError(
        f"no periodic phase within {max_iterations} iterations of "
        f"{graph.name!r}; channels likely grow without bound -- add buffer "
        "back-edges (repro.sdf.buffers.add_buffer_edges) before analyzing"
    )
