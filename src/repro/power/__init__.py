"""Power/energy modelling for the mapping flow (see docs/power.md).

The subsystem adds a third objective -- energy -- next to the paper's
throughput and area: a lumos-style technology-scaled per-tile
static+dynamic power model (:mod:`repro.power.model`), Marcon-style
per-hop/per-transfer interconnect energy, and exact-fraction
platform-power and energy-per-iteration estimates
(:mod:`repro.power.estimate`) that the DSE engine, CLI budgets
(``--power-budget`` / ``--energy-budget``), reports and artifacts all
consume.
"""

from repro.power.estimate import (
    EnergyEstimate,
    PowerEstimate,
    application_energy,
    platform_power,
)
from repro.power.model import (
    BASE_TECH_NM,
    TECH_NODES,
    PowerCounters,
    PowerModel,
    power_counters,
    words_per_token,
)

__all__ = [
    "BASE_TECH_NM",
    "TECH_NODES",
    "PowerCounters",
    "PowerModel",
    "power_counters",
    "words_per_token",
    "EnergyEstimate",
    "PowerEstimate",
    "application_energy",
    "platform_power",
]
