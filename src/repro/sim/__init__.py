"""Cycle-level platform simulator -- the repository's FPGA stand-in.

The paper measures throughput by running the generated system on a Virtex-6
board.  This package executes the *same generated system* -- the bound
graph with its static-order schedules, buffer capacities and interconnect
parameters -- on a discrete-event engine, with two fidelity upgrades over
the analysis model:

* application actors run their *functional* implementations on real token
  values, so each firing takes its actual, data-dependent cycle count
  (bounded by the WCET; the simulator enforces this); and
* throughput is measured, not analyzed: iterations completed per cycle over
  a long run, after a warm-up window (the paper's "long term average").

Because measurement and analysis share the execution semantics, the
worst-case analysis line of Fig. 6 is conservative by construction, and the
gap between them is exactly the actors' execution-time slack -- the effect
the case study demonstrates.
"""

from repro.sim.platform_sim import (
    MeasuredThroughput,
    PlatformSimulator,
    TrafficStats,
)
from repro.sim.trace import UtilizationReport, gantt, utilization

__all__ = [
    "PlatformSimulator",
    "MeasuredThroughput",
    "TrafficStats",
    "UtilizationReport",
    "gantt",
    "utilization",
]
