"""Tests for the SDF graph data structure."""

import pytest

from repro.exceptions import GraphError
from repro.sdf import SDFGraph
from repro.sdf.graph import validate_graph


class TestConstruction:
    def test_add_actor_returns_actor(self):
        g = SDFGraph("g")
        actor = g.add_actor("A", execution_time=10)
        assert actor.name == "A"
        assert actor.execution_time == 10

    def test_duplicate_actor_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A")
        with pytest.raises(GraphError, match="duplicate actor"):
            g.add_actor("A")

    def test_duplicate_edge_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A")
        g.add_actor("B")
        g.add_edge("e", "A", "B")
        with pytest.raises(GraphError, match="duplicate edge"):
            g.add_edge("e", "B", "A")

    def test_edge_to_unknown_actor_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A")
        with pytest.raises(GraphError, match="unknown actor"):
            g.add_edge("e", "A", "Missing")

    def test_nonpositive_rates_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A")
        g.add_actor("B")
        with pytest.raises(GraphError, match="rates must be positive"):
            g.add_edge("e", "A", "B", production=0)
        with pytest.raises(GraphError, match="rates must be positive"):
            g.add_edge("e", "A", "B", consumption=-1)

    def test_negative_initial_tokens_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A")
        with pytest.raises(GraphError, match="initial tokens"):
            g.add_edge("e", "A", "A", initial_tokens=-1)

    def test_negative_execution_time_rejected(self):
        g = SDFGraph("g")
        with pytest.raises(GraphError, match="execution time"):
            g.add_actor("A", execution_time=-5)

    def test_empty_names_rejected(self):
        with pytest.raises(GraphError):
            SDFGraph("")
        g = SDFGraph("g")
        with pytest.raises(GraphError):
            g.add_actor("")


class TestQueries:
    def test_adjacency(self, figure2_graph):
        g = figure2_graph
        out_names = {e.name for e in g.out_edges("A")}
        assert out_names == {"a2b", "a2c", "selfA"}
        in_names = {e.name for e in g.in_edges("C")}
        assert in_names == {"a2c", "b2c"}

    def test_self_edges(self, figure2_graph):
        assert [e.name for e in figure2_graph.self_edges("A")] == ["selfA"]
        assert figure2_graph.self_edges("B") == ()

    def test_explicit_edges_exclude_self_and_implicit(self, figure2_graph):
        names = {e.name for e in figure2_graph.explicit_edges()}
        assert names == {"a2b", "a2c", "b2c"}

    def test_len_iter_contains(self, figure2_graph):
        assert len(figure2_graph) == 3
        assert {a.name for a in figure2_graph} == {"A", "B", "C"}
        assert "A" in figure2_graph
        assert "Z" not in figure2_graph

    def test_lookup_errors(self, figure2_graph):
        with pytest.raises(GraphError, match="unknown actor"):
            figure2_graph.actor("Z")
        with pytest.raises(GraphError, match="unknown edge"):
            figure2_graph.edge("nope")


class TestMutation:
    def test_remove_edge(self, figure2_graph):
        figure2_graph.remove_edge("a2c")
        assert not figure2_graph.has_edge("a2c")
        assert {e.name for e in figure2_graph.in_edges("C")} == {"b2c"}

    def test_remove_actor_removes_touching_edges(self, figure2_graph):
        figure2_graph.remove_actor("C")
        assert not figure2_graph.has_actor("C")
        assert not figure2_graph.has_edge("a2c")
        assert not figure2_graph.has_edge("b2c")
        assert figure2_graph.has_edge("a2b")

    def test_remove_unknown_raises(self, figure2_graph):
        with pytest.raises(GraphError):
            figure2_graph.remove_edge("nope")
        with pytest.raises(GraphError):
            figure2_graph.remove_actor("nope")


class TestDerivedViews:
    def test_copy_is_independent(self, figure2_graph):
        clone = figure2_graph.copy()
        clone.actor("A").execution_time = 99
        clone.remove_edge("a2b")
        assert figure2_graph.actor("A").execution_time == 4
        assert figure2_graph.has_edge("a2b")

    def test_with_execution_times(self, figure2_graph):
        faster = figure2_graph.with_execution_times({"A": 1, "B": 1})
        assert faster.actor("A").execution_time == 1
        assert faster.actor("C").execution_time == 2
        assert figure2_graph.actor("A").execution_time == 4

    def test_connectivity(self, figure2_graph):
        assert figure2_graph.is_connected()
        g = SDFGraph("two_islands")
        g.add_actor("A")
        g.add_actor("B")
        assert not g.is_connected()
        assert len(g.undirected_components()) == 2

    def test_validate_graph_rejects_disconnected(self):
        g = SDFGraph("two_islands")
        g.add_actor("A")
        g.add_actor("B")
        with pytest.raises(GraphError, match="not connected"):
            validate_graph(g)

    def test_validate_graph_rejects_empty(self):
        with pytest.raises(GraphError, match="no actors"):
            validate_graph(SDFGraph("empty"))

    def test_total_initial_tokens(self, figure2_graph):
        assert figure2_graph.total_initial_tokens() == 1


def test_figure2_semantics(figure2_graph):
    """Initial state of Fig. 2: only A is ready (B and C lack tokens)."""
    tokens = {e.name: e.initial_tokens for e in figure2_graph.edges}

    def ready(actor):
        return all(
            tokens[e.name] >= e.consumption
            for e in figure2_graph.in_edges(actor)
        )

    assert ready("A")
    assert not ready("B")
    assert not ready("C")

    # Fire A: produces 2 on a2b, 1 on a2c, 1 on selfA (per the paper text).
    for e in figure2_graph.in_edges("A"):
        tokens[e.name] -= e.consumption
    for e in figure2_graph.out_edges("A"):
        tokens[e.name] += e.production
    assert tokens["a2b"] == 2
    assert tokens["a2c"] == 1
    assert ready("B")
    assert not ready("C")  # needs 2 tokens from B

    # B fires twice, then C becomes ready.
    for _ in range(2):
        for e in figure2_graph.in_edges("B"):
            tokens[e.name] -= e.consumption
        for e in figure2_graph.out_edges("B"):
            tokens[e.name] += e.production
    assert ready("C")


class TestBuildTimeValidation:
    """Regression tests: malformed fields are rejected at construction,
    not later inside the simulator (ISSUE 6 satellite)."""

    def make(self):
        g = SDFGraph("v")
        g.add_actor("A")
        g.add_actor("B")
        return g

    @pytest.mark.parametrize("production", (0, -1, -7))
    def test_zero_or_negative_production_rejected(self, production):
        g = self.make()
        with pytest.raises(GraphError, match="rates must be positive"):
            g.add_edge("e", "A", "B", production=production)

    @pytest.mark.parametrize("consumption", (0, -3))
    def test_zero_or_negative_consumption_rejected(self, consumption):
        g = self.make()
        with pytest.raises(GraphError, match="rates must be positive"):
            g.add_edge("e", "A", "B", consumption=consumption)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("production", 1.5),
            ("consumption", 2.0),
            ("initial_tokens", 0.5),
            ("token_size", 4.0),
            ("production", True),
            ("initial_tokens", False),
        ],
    )
    def test_non_integer_fields_rejected(self, field, value):
        g = self.make()
        with pytest.raises(GraphError, match="must be an integer"):
            g.add_edge("e", "A", "B", **{field: value})

    def test_non_integer_execution_time_rejected(self):
        g = SDFGraph("v")
        with pytest.raises(GraphError, match="must be an integer"):
            g.add_actor("A", execution_time=1.5)

    def test_negative_initial_tokens_rejected(self):
        g = self.make()
        with pytest.raises(GraphError, match="initial tokens"):
            g.add_edge("e", "A", "B", initial_tokens=-1)

    def test_self_loop_without_tokens_rejected(self):
        g = self.make()
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge("s", "A", "A")

    def test_self_loop_with_insufficient_tokens_rejected(self):
        g = self.make()
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge("s", "A", "A", consumption=3, initial_tokens=2)

    def test_self_loop_with_enough_tokens_accepted(self):
        g = self.make()
        edge = g.add_edge("s", "A", "A", consumption=2, initial_tokens=2)
        assert edge.is_self_edge
