#!/usr/bin/env python3
"""Multiple applications sharing one platform (use-cases).

MAMPS generates platforms for "one or more applications"; this example
maps two applications -- the MJPEG decoder and a synthetic audio filter
chain -- onto the same 5-tile platform as time-multiplexed use-cases.
Each use-case keeps its own schedules and throughput guarantee; the
generated platform is the hardware union, with physical links shared
across use-cases.

The second half sizes the shared platform with the exploration engine:
both applications sweep the same :class:`DesignSpace` through evaluators
that share one content-addressed :class:`EvaluationCache`, so when the
combined study revisits a (application, platform) pair -- as overlapping
use-case studies constantly do -- the mapping analysis is never re-run.

Run:  python examples/multi_application.py
"""

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.flow import (
    DesignSpace,
    EvaluationCache,
    Evaluator,
    ParallelExplorer,
)
from repro.flow.usecases import generate_use_case_platform, map_use_cases
from repro.mjpeg import build_mjpeg_application, encode_sequence
from repro.mjpeg.sequences import gradient_sequence
from repro.sdf import SDFGraph


def build_audio_app() -> ApplicationModel:
    """A 4-stage audio pipeline: source, two biquad filters, sink."""
    g = SDFGraph("audio")
    stages = (("src", 120), ("biquad1", 480), ("biquad2", 480),
              ("sink", 90))
    previous = None
    for name, wcet in stages:
        g.add_actor(name, execution_time=wcet)
        if previous is not None:
            g.add_edge(f"{previous}2{name}", previous, name,
                       token_size=16)
        previous = name
    return ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor=name, pe_type="microblaze",
                metrics=ImplementationMetrics(
                    wcet=wcet,
                    memory=MemoryRequirements(4096, 2048),
                ),
            )
            for name, wcet in stages
        ],
    )


def main() -> None:
    encoded = encode_sequence(gradient_sequence(n_frames=2), quality=75)
    mjpeg = build_mjpeg_application(encoded)
    audio = build_audio_app()

    arch = architecture_from_template(5, "fsl")
    mapping = map_use_cases(
        [mjpeg, audio], arch,
        fixed={"mjpeg": {"VLD": "tile0"}, "audio": {"src": "tile0"}},
    )

    print(mapping.as_table())
    print()

    project = generate_use_case_platform([mjpeg, audio], arch, mapping)
    root = project.write_to("generated")
    print(f"shared-platform project written to {root}")
    print("per-use-case software:")
    for path in project.paths():
        if path.endswith("main.c"):
            print(f"  {path}")

    # ------------------------------------------------------------------
    # How big does the shared platform need to be?  Sweep the template
    # for both applications with ONE shared evaluation cache.  Keys are
    # content-addressed (application + architecture fingerprints), so the
    # two applications keep separate entries -- but any re-visit of a
    # pair, like the combined re-sweep below, is a pure cache hit.
    # ------------------------------------------------------------------
    print("\nsizing the shared platform via exploration:")
    space = DesignSpace(tile_counts=(2, 3, 4, 5),
                        interconnects=("fsl",))
    cache = EvaluationCache()
    evaluators = {
        "mjpeg": Evaluator(mjpeg, fixed={"VLD": "tile0"}, cache=cache),
        "audio": Evaluator(audio, fixed={"src": "tile0"}, cache=cache),
    }
    for name, evaluator in evaluators.items():
        result = ParallelExplorer(evaluator, jobs=2).explore(space)
        cheapest = result.pareto_frontier()[0]
        fastest = result.pareto_frontier()[-1]
        print(
            f"  {name}: frontier spans {cheapest.label} "
            f"({cheapest.area.slices} slices) to {fastest.label} "
            f"({float(fastest.throughput * 1e6):.4f}/Mcycle)"
        )

    # The combined study revisits every (app, platform) pair: all hits.
    before = cache.stats.hits
    for name, evaluator in evaluators.items():
        ParallelExplorer(evaluator, jobs=2).explore(space)
    print(
        f"  combined re-sweep: {cache.stats.hits - before} cache hit(s), "
        f"{sum(e.evaluations for e in evaluators.values())} total "
        "analyses across both sweeps (none repeated)"
    )


if __name__ == "__main__":
    main()
