"""Seeded load generation for the flow service.

``repro.loadgen`` answers the capacity question the scheduler alone
cannot: how many requests per second does a deployment of ``repro
serve`` replicas actually sustain, and at what tail latency?  Two
modules:

* :mod:`repro.loadgen.traffic` -- deterministic open-loop traffic
  plans: a pool of unique scenario FlowSpec documents, a seeded
  duplicate-heavy request sequence, Poisson arrival offsets, and
  round-robin replica fan-out.
* :mod:`repro.loadgen.harness` -- :func:`run_load_test` fires a plan
  at live replicas through the service client, measures sustained RPS
  and nearest-rank p50/p95/p99 latency, folds per-replica ``healthz``
  counter deltas (coalescing, artifact hits, computed), and
  :class:`LoadTestGates` turns the report into a CI verdict;
  :func:`write_bench_report` emits ``BENCH_service.json``.

Everything is seeded, so a load test is a replayable experiment, not a
one-off observation.  Exposed on the CLI as ``repro loadtest``.
"""

from repro.loadgen.harness import (
    LoadTestConfig,
    LoadTestGates,
    LoadTestReport,
    ReplicaDelta,
    RequestOutcome,
    percentile_ms,
    run_load_test,
    write_bench_report,
)
from repro.loadgen.traffic import (
    LoadgenError,
    PlannedRequest,
    arrival_offsets,
    build_traffic,
    request_pool,
    request_sequence,
)

__all__ = [
    "LoadTestConfig",
    "LoadTestGates",
    "LoadTestReport",
    "LoadgenError",
    "PlannedRequest",
    "ReplicaDelta",
    "RequestOutcome",
    "arrival_offsets",
    "build_traffic",
    "percentile_ms",
    "request_pool",
    "request_sequence",
    "run_load_test",
    "write_bench_report",
]
