"""repro.scenarios: seeded synthetic workloads for the automated flow.

A :class:`ScenarioSpec` (family + seed + shape knobs) deterministically
generates an SDF application, a matching template architecture and a
bridged :class:`~repro.flow.spec.FlowSpec`, so generated workloads run
through ``repro run/batch/serve`` -- and persist, resume and dedup --
exactly like the hand-written case study.  See ``docs/scenarios.md``.
"""

from repro.scenarios.emit import render_flow_spec_toml
from repro.scenarios.generator import (
    build_scenario_application,
    build_scenario_graph,
    generate_scenarios,
    scenario_architecture,
    scenario_flow_spec,
    scenario_strategies,
)
from repro.scenarios.spec import (
    FAMILIES,
    WCET_PROFILES,
    ScenarioError,
    ScenarioSpec,
)
from repro.scenarios.templates import TEMPLATES, SubgraphTemplate

__all__ = [
    "FAMILIES",
    "ScenarioError",
    "ScenarioSpec",
    "SubgraphTemplate",
    "TEMPLATES",
    "WCET_PROFILES",
    "build_scenario_application",
    "build_scenario_graph",
    "generate_scenarios",
    "render_flow_spec_toml",
    "scenario_architecture",
    "scenario_flow_spec",
    "scenario_strategies",
]
