"""Whole-frame numpy reference decoder.

Decodes an encoded sequence directly (no actors, no platform) -- the
golden model the actor pipeline's framebuffer output is compared against.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mjpeg.bitstream import BitReader
from repro.mjpeg.colors import upsample_nearest, ycbcr_to_rgb
from repro.mjpeg.dct import dequantize, idct_samples
from repro.mjpeg.encoder import (
    EncodedSequence,
    HEADER_BYTES,
    parse_header,
)
from repro.mjpeg.entropy import decode_block
from repro.mjpeg.tables import (
    BASE_CHROMA_QUANT,
    BASE_LUMA_QUANT,
    INVERSE_ZIGZAG,
    scaled_quant_table,
)


def decode_sequence(encoded: EncodedSequence) -> List[np.ndarray]:
    """Decode every frame back to RGB (HxWx3 uint8)."""
    info = parse_header(encoded.data)
    reader = BitReader(encoded.data[HEADER_BYTES:])
    luma_table = scaled_quant_table(BASE_LUMA_QUANT, info.quality)
    chroma_table = scaled_quant_table(BASE_CHROMA_QUANT, info.quality)
    unzigzag = np.array(INVERSE_ZIGZAG)

    frames: List[np.ndarray] = []
    for _frame_index in range(info.n_frames):
        y_plane = np.zeros((info.height, info.width), dtype=np.uint8)
        if info.color:
            cb_plane = np.zeros(
                (info.height // info.v, info.width // info.h),
                dtype=np.uint8,
            )
            cr_plane = np.zeros_like(cb_plane)
        predictors = {"y": 0, "cb": 0, "cr": 0}

        for mcu_y in range(info.mcus_y):
            for mcu_x in range(info.mcus_x):
                for by in range(info.v):
                    for bx in range(info.h):
                        levels, predictors["y"], _n = decode_block(
                            reader, predictors["y"]
                        )
                        block = levels[unzigzag].reshape(8, 8)
                        samples = idct_samples(
                            dequantize(block, luma_table)
                        )
                        y0 = mcu_y * 8 * info.v + 8 * by
                        x0 = mcu_x * 8 * info.h + 8 * bx
                        y_plane[y0:y0 + 8, x0:x0 + 8] = samples
                if info.color:
                    for name, plane, table in (
                        ("cb", cb_plane, chroma_table),
                        ("cr", cr_plane, chroma_table),
                    ):
                        levels, predictors[name], _n = decode_block(
                            reader, predictors[name]
                        )
                        block = levels[unzigzag].reshape(8, 8)
                        samples = idct_samples(dequantize(block, table))
                        plane[
                            mcu_y * 8:mcu_y * 8 + 8,
                            mcu_x * 8:mcu_x * 8 + 8,
                        ] = samples
        reader.align()

        if info.color:
            ycbcr = np.stack(
                [
                    y_plane,
                    upsample_nearest(cb_plane, info.v, info.h),
                    upsample_nearest(cr_plane, info.v, info.h),
                ],
                axis=-1,
            )
            frames.append(ycbcr_to_rgb(ycbcr))
        else:
            frames.append(
                np.stack([y_plane, y_plane, y_plane], axis=-1)
            )
    return frames


def psnr(reference: np.ndarray, decoded: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    error = (
        reference.astype(np.float64) - decoded.astype(np.float64)
    )
    mse = float(np.mean(error * error))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
