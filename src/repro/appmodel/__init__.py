"""Application model (paper Section 3).

The application model joins the SDF graph with the actor implementations and
their metrics: worst-case execution time (WCET), instruction and data memory
requirements (kept separate for Harvard-architecture tiles) and token sizes.
An actor may have *multiple* implementations, one per processing-element
type, enabling mapping onto heterogeneous platforms; each implementation
records how its function arguments relate to the graph's explicit edges.

In the paper the implementations are C functions; here they are Python
callables that return both the produced tokens and the cycle count of the
firing (the stand-in for compiled-code timing, see DESIGN.md).  Purely
timing-driven flows can omit the callable and rely on the WCET metric alone.
"""

from repro.appmodel.metrics import ImplementationMetrics, MemoryRequirements
from repro.appmodel.implementation import (
    ActorImplementation,
    FiringContext,
    FiringOutput,
)
from repro.appmodel.model import ApplicationModel
from repro.appmodel.wcet import (
    ExecutionTimeRecord,
    MeasuredTimes,
    measure_execution_times,
)

__all__ = [
    "ImplementationMetrics",
    "MemoryRequirements",
    "ActorImplementation",
    "FiringContext",
    "FiringOutput",
    "ApplicationModel",
    "ExecutionTimeRecord",
    "MeasuredTimes",
    "measure_execution_times",
]
