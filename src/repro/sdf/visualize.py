"""Graphviz DOT export for SDF graphs.

Rendering is left to external tooling; the export keeps the conventions of
the paper's figures: rates annotate the edge ends, initial tokens appear as
a dot with a count, implicit edges are dashed.
"""

from __future__ import annotations

from typing import List

from repro.sdf.graph import SDFGraph


def to_dot(graph: SDFGraph) -> str:
    """Render ``graph`` as a Graphviz digraph string."""
    lines: List[str] = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for actor in graph:
        label = actor.name
        if actor.execution_time:
            label += f"\\n[{actor.execution_time}]"
        lines.append(f'  "{actor.name}" [shape=circle, label="{label}"];')
    for edge in graph.edges:
        attributes = [
            f'taillabel="{edge.production}"',
            f'headlabel="{edge.consumption}"',
        ]
        label_parts = []
        if edge.initial_tokens:
            label_parts.append(f"●{edge.initial_tokens}")
        if edge.token_size:
            label_parts.append(f"{edge.token_size}B")
        if label_parts:
            attributes.append(f'label="{" ".join(label_parts)}"')
        if edge.implicit:
            attributes.append("style=dashed")
        lines.append(
            f'  "{edge.src}" -> "{edge.dst}" [{", ".join(attributes)}];'
        )
    lines.append("}")
    return "\n".join(lines)


def save_dot(graph: SDFGraph, path: str) -> None:
    """Write the DOT rendering of ``graph`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph))
