"""Ablation: the architecture-template design space for the MJPEG decoder.

Regenerates the "very fast design space exploration" the conclusion
promises (Section 7): every template point (tile count x interconnect)
evaluated by the conservative analysis alone, with the Pareto frontier
over (guaranteed throughput, slices).  Also checks the design choices the
paper motivates:

* adding tiles never lowers guaranteed throughput, with diminishing
  returns once every actor owns a tile;
* FSL and NoC guarantees stay within a few % of each other on this
  compute-bound application (why the paper's Fig. 6a/6b look alike).
"""

import pytest

from benchmarks.conftest import write_results
from repro.flow.dse import explore_design_space
from repro.mjpeg import build_mjpeg_application


def test_design_space_ablation(benchmark, workloads):
    app = build_mjpeg_application(workloads["gradient"])

    result = benchmark.pedantic(
        lambda: explore_design_space(
            app,
            tile_counts=(1, 2, 3, 4, 5),
            interconnects=("fsl", "noc"),
            fixed={"VLD": "tile0"},
        ),
        rounds=1,
        iterations=1,
    )

    table = result.as_table()
    path = write_results("ablation_design_space.txt", table)
    print("\n" + table + f"\n-> {path}")

    assert not result.failures
    by_key = {
        (p.tiles, p.interconnect): p.throughput for p in result.points
    }

    # More tiles never hurt the guarantee (FSL series).
    fsl_series = [by_key[(t, "fsl")] for t in (1, 2, 3, 4, 5)]
    assert all(b >= a for a, b in zip(fsl_series, fsl_series[1:]))

    # Diminishing returns: the 4->5 gain is no bigger than 1->2.
    first_gain = fsl_series[1] - fsl_series[0]
    last_gain = fsl_series[4] - fsl_series[3]
    assert last_gain <= first_gain

    # NoC tracks FSL within a few % at every multi-tile point.
    for tiles in (2, 3, 4, 5):
        fsl = by_key[(tiles, "fsl")]
        noc = by_key[(tiles, "noc")]
        assert noc <= fsl
        assert float(noc / fsl) > 0.95

    # The Pareto frontier exists and spans from cheapest to fastest.
    frontier = result.pareto_frontier()
    assert frontier[0].tiles == 1
    assert frontier[-1].throughput == max(p.throughput
                                          for p in result.points)
