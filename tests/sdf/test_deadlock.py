"""Tests for deadlock detection."""

import pytest

from repro.exceptions import GraphError
from repro.sdf import SDFGraph, is_deadlock_free
from repro.sdf.deadlock import deadlock_report


def test_figure2_is_live(figure2_graph):
    assert is_deadlock_free(figure2_graph)
    assert deadlock_report(figure2_graph) is None


def test_tokenless_cycle_deadlocks():
    g = SDFGraph("cycle")
    g.add_actor("A")
    g.add_actor("B")
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")
    assert not is_deadlock_free(g)
    report = deadlock_report(g)
    assert report is not None
    assert "deadlock" in report


def test_cycle_with_token_is_live():
    g = SDFGraph("cycle")
    g.add_actor("A")
    g.add_actor("B")
    g.add_edge("ab", "A", "B", initial_tokens=1)
    g.add_edge("ba", "B", "A")
    assert is_deadlock_free(g)


def test_multirate_cycle_needs_enough_tokens():
    """A cycle where the token count is positive but below the consumption
    burst still deadlocks."""
    g = SDFGraph("tight")
    g.add_actor("A")
    g.add_actor("B")
    g.add_edge("ab", "A", "B", production=1, consumption=3, initial_tokens=2)
    g.add_edge("ba", "B", "A", production=3, consumption=1)
    # A can fire once using a credit? No: ba has 0 tokens so A can't fire;
    # B needs 3 on ab but only 2 present -> deadlock.
    assert not is_deadlock_free(g)
    # Adding one more initial token unblocks the full iteration.
    g2 = SDFGraph("tight2")
    g2.add_actor("A")
    g2.add_actor("B")
    g2.add_edge("ab", "A", "B", production=1, consumption=3, initial_tokens=3)
    g2.add_edge("ba", "B", "A", production=3, consumption=1)
    assert is_deadlock_free(g2)


def test_self_edge_without_token_rejected_at_build_time():
    # A token-less self-loop can never fire; since the build-time
    # validation upgrade this is rejected at add_edge instead of
    # surfacing later as a deadlock/simulator failure.
    g = SDFGraph("stuck")
    g.add_actor("A")
    with pytest.raises(GraphError, match="self-loop"):
        g.add_edge("selfA", "A", "A")
    # A starved *cycle* (not a self-loop) still deadlocks at analysis
    # time: liveness of a cycle is a whole-graph property.
    g.add_actor("B")
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")
    assert not is_deadlock_free(g)
    report = deadlock_report(g)
    assert "ab" in report or "ba" in report


def test_report_names_starving_actor():
    g = SDFGraph("cycle")
    g.add_actor("P")
    g.add_actor("Q")
    g.add_edge("pq", "P", "Q")
    g.add_edge("qp", "Q", "P")
    report = deadlock_report(g)
    assert "P" in report and "Q" in report


def test_source_actor_graph_is_live(two_actor_pipeline):
    assert is_deadlock_free(two_actor_pipeline)
