"""Tests for multi-application (use-case) support."""

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.exceptions import ArchitectureError, MappingError
from repro.flow.usecases import (
    generate_use_case_platform,
    map_use_cases,
)
from repro.sdf import SDFGraph


def make_app(name, times, token_size=8):
    g = SDFGraph(name)
    previous = None
    for index, t in enumerate(times):
        actor = f"{name}_a{index}"
        g.add_actor(actor, execution_time=t)
        if previous is not None:
            g.add_edge(
                f"{name}_e{index - 1}", previous, actor,
                token_size=token_size,
            )
        previous = actor
    implementations = [
        ActorImplementation(
            actor=a.name, pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=a.execution_time,
                memory=MemoryRequirements(2048, 1024),
            ),
        )
        for a in g
    ]
    return ApplicationModel(graph=g, implementations=implementations)


@pytest.fixture
def two_apps():
    return [
        make_app("video", (400, 700, 300)),
        make_app("audio", (150, 250)),
    ]


class TestMapUseCases:
    def test_each_use_case_gets_a_guarantee(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(two_apps, arch)
        assert set(mapping.results) == {"video", "audio"}
        for name in ("video", "audio"):
            assert mapping.guarantee_of(name) > 0

    def test_union_links_deduplicated(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(two_apps, arch)
        # Every pair is unique.
        assert len(set(mapping.link_pairs)) == len(mapping.link_pairs)
        total_channels = sum(
            len(r.mapping.inter_tile_channels())
            for r in mapping.results.values()
        )
        assert len(mapping.link_pairs) <= total_channels

    def test_duplicate_names_rejected(self):
        apps = [make_app("same", (100,)), make_app("same", (200,))]
        arch = architecture_from_template(2)
        with pytest.raises(MappingError, match="distinct names"):
            map_use_cases(apps, arch)

    def test_empty_rejected(self):
        arch = architecture_from_template(2)
        with pytest.raises(MappingError, match="at least one"):
            map_use_cases([], arch)

    def test_per_app_pinning(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(
            two_apps, arch,
            fixed={"video": {"video_a0": "tile2"}},
        )
        video = mapping.results["video"].mapping
        assert video.actor_binding["video_a0"] == "tile2"

    def test_union_port_limit_enforced(self):
        """Distinct per-use-case destinations from one source tile must
        trip the union FSL port check even though each use-case alone
        fits."""
        apps = [make_app(f"p{i}", (100, 100)) for i in range(3)]
        arch = architecture_from_template(4, "fsl")
        arch.interconnect.max_links_per_tile = 1
        fixed = {
            f"p{i}": {
                f"p{i}_a0": "tile0",
                f"p{i}_a1": f"tile{i + 1}",
            }
            for i in range(3)
        }
        with pytest.raises(ArchitectureError, match="outgoing FSL"):
            map_use_cases(apps, arch, fixed=fixed)

    def test_table_rendering(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(two_apps, arch)
        table = mapping.as_table()
        assert "video" in table and "audio" in table
        assert "platform union" in table


class TestUseCaseProject:
    def test_project_contains_both_use_cases(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(two_apps, arch)
        project = generate_use_case_platform(two_apps, arch, mapping)
        paths = project.paths()
        assert any(p.startswith("usecases/video/") for p in paths)
        assert any(p.startswith("usecases/audio/") for p in paths)
        assert "union_platform.txt" in paths

    def test_union_summary_lists_links(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(two_apps, arch)
        project = generate_use_case_platform(two_apps, arch, mapping)
        summary = project.file("union_platform.txt")
        for src, dst in mapping.link_pairs:
            assert f"{src} -> {dst}" in summary

    def test_project_writes_to_disk(self, two_apps, tmp_path):
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(two_apps, arch)
        project = generate_use_case_platform(two_apps, arch, mapping)
        root = project.write_to(tmp_path)
        assert (root / "union_platform.txt").exists()
        assert (root / "usecases" / "video" / "system.mhs").exists()


class TestAsTableWidths:
    def test_long_use_case_names_widen_the_table(self):
        long_name = "set_top_box_picture_in_picture_decoder"
        apps = [
            make_app(long_name, (400, 700, 300)),
            make_app("audio", (150, 250)),
        ]
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(apps, arch)
        lines = mapping.as_table().splitlines()
        header, rule = lines[0], lines[1]
        # the rule matches the header width, and no data row overflows it
        assert len(rule) == len(header)
        assert set(rule) == {"-"}
        for line in lines[2:-1]:
            assert len(line) <= len(header)
        name_column = header.index(" guarantee/Mcycle")
        assert name_column >= len(long_name)

    def test_short_names_keep_a_compact_table(self, two_apps):
        arch = architecture_from_template(3, "fsl")
        table = map_use_cases(two_apps, arch).as_table()
        header = table.splitlines()[0]
        assert header.startswith("use-case")
        assert len(header) < 60
