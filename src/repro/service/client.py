"""Typed stdlib client for the flow service HTTP API.

:class:`FlowServiceClient` wraps the endpoints of
:mod:`repro.service.http` behind methods that accept and return domain
shapes: submissions take a :class:`~repro.flow.spec.FlowSpec`, a parsed
spec document, or a path to a ``.toml``/``.json`` spec file (TOML specs
are converted to their JSON document form client-side via
:meth:`FlowSpec.to_document`); results come back either decoded
(:meth:`result`) or as the exact canonical document text
(:meth:`result_text`) for byte-exact consumers.

Built on ``urllib.request`` only, so the client works anywhere the
repository does -- tests, examples, CI smoke jobs -- with no extra
dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.flow.spec import FlowSpec, load_flow_spec


class ServiceClientError(ReproError):
    """Raised for transport failures and non-2xx API responses.

    ``status`` carries the HTTP status code when the server answered
    (``None`` for transport-level failures), so callers can distinguish
    a malformed spec (400) from a full queue (429).
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


#: Job states a poll loop treats as terminal.
_TERMINAL = ("done", "failed")


class FlowServiceClient:
    """A client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    def submit(
        self, spec: Union[FlowSpec, Dict[str, Any], str, Path]
    ) -> Dict[str, Any]:
        """POST one flow request; returns the job view."""
        return self._json("POST", "/v1/flows", body=_document_of(spec))

    def submit_and_wait(
        self,
        spec: Union[FlowSpec, Dict[str, Any], str, Path],
        timeout: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit, then poll until the job completes.

        Returns the final job view; raises :class:`ServiceClientError`
        when the flow failed server-side.
        """
        view = self.submit(spec)
        if view["status"] not in _TERMINAL:
            view = self.wait(view["id"], timeout=timeout)
        if view["status"] == "failed":
            raise ServiceClientError(
                f"flow {view['spec_name']!r} failed: {view['error']}"
            )
        return view

    # ------------------------------------------------------------------
    # status and results
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Dict[str, Any]:
        """Current job view (includes per-stage progress)."""
        return self._json("GET", f"/v1/flows/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll the job until done/failed or ``timeout`` seconds pass."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["status"] in _TERMINAL:
                return view
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} still {view['status']!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def result_text(self, job_id: str) -> str:
        """The exact canonical ``flow-response`` document text."""
        status, text = self._request("GET", f"/v1/flows/{job_id}/result")
        if status != 200:
            raise ServiceClientError(
                f"job {job_id} has no result yet (HTTP {status})",
                status=status,
            )
        return text

    def result(self, job_id: str) -> Dict[str, Any]:
        """The decoded ``flow-response`` payload of a done job."""
        return json.loads(self.result_text(job_id))

    # ------------------------------------------------------------------
    # artifacts and health
    # ------------------------------------------------------------------
    def artifact_text(self, kind: str, key: str) -> str:
        """Exact on-disk bytes of one workspace artifact."""
        status, text = self._request(
            "GET", f"/v1/artifacts/{kind}/{key}"
        )
        return text

    def artifact(self, kind: str, key: str) -> Dict[str, Any]:
        """One workspace artifact, decoded."""
        return json.loads(self.artifact_text(kind, key))

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``: queue depth plus service counters."""
        return self._json("GET", "/v1/healthz")

    # ------------------------------------------------------------------
    # the run-time platform
    # ------------------------------------------------------------------
    def platform_status(self) -> Dict[str, Any]:
        """``GET /v1/platform``: admitted apps + residual capacity."""
        return self._json("GET", "/v1/platform")

    def platform_admit(
        self, spec: Union[FlowSpec, Dict[str, Any], str, Path]
    ) -> Dict[str, Any]:
        """Admit one application onto the run-time platform.

        Returns the admission decision (app id, chosen operating point,
        placement, guarantee).  A rejection surfaces as
        :class:`ServiceClientError` with ``status == 409``.
        """
        return self._json(
            "POST", "/v1/platform/apps", body=_document_of(spec)
        )

    def platform_depart(
        self, app_id: str, migrate: bool = False
    ) -> Dict[str, Any]:
        """Depart ``app_id``; ``migrate=True`` rebalances survivors."""
        return self._json(
            "POST",
            f"/v1/platform/apps/{app_id}/depart",
            body={"migrate": migrate},
        )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, str]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            text = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(text).get("error", text)
            except (ValueError, AttributeError):
                detail = text.strip()
            raise ServiceClientError(
                f"{method} {path} -> HTTP {error.code}: {detail}",
                status=error.code,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceClientError(
                f"cannot reach flow service at {self.base_url}: "
                f"{error.reason}"
            ) from None

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        _, text = self._request(method, path, body=body)
        return json.loads(text)


def _document_of(
    spec: Union[FlowSpec, Dict[str, Any], str, Path],
) -> Dict[str, Any]:
    """The JSON document to POST for any accepted spec form."""
    if isinstance(spec, dict):
        return spec
    if isinstance(spec, FlowSpec):
        return spec.to_document()
    return load_flow_spec(spec).to_document()
