"""Fixtures for the mapping tests: a small multirate application."""

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.sdf import SDFGraph


def make_impl(actor, wcet, pe_type="microblaze", instr=4096, data=2048):
    return ActorImplementation(
        actor=actor,
        pe_type=pe_type,
        metrics=ImplementationMetrics(
            wcet=wcet,
            memory=MemoryRequirements(
                instruction_bytes=instr, data_bytes=data
            ),
        ),
    )


@pytest.fixture
def small_app():
    """The Fig. 2 graph with WCETs scaled to platform-ish magnitudes."""
    g = SDFGraph("figure2")
    g.add_actor("A", execution_time=400)
    g.add_actor("B", execution_time=300)
    g.add_actor("C", execution_time=200)
    g.add_edge("a2b", "A", "B", production=2, consumption=1, token_size=16)
    g.add_edge("a2c", "A", "C", production=1, consumption=1, token_size=8)
    g.add_edge("b2c", "B", "C", production=1, consumption=2, token_size=8)
    g.add_edge("selfA", "A", "A", initial_tokens=1, implicit=True)
    return ApplicationModel(
        graph=g,
        implementations=[
            make_impl("A", 400),
            make_impl("B", 300),
            make_impl("C", 200),
        ],
    )


@pytest.fixture
def chain_app():
    """Three-stage unit-rate pipeline, the simplest mappable shape."""
    g = SDFGraph("chain3")
    for name, t in (("P", 500), ("Q", 700), ("R", 300)):
        g.add_actor(name, execution_time=t)
    g.add_edge("pq", "P", "Q", token_size=32)
    g.add_edge("qr", "Q", "R", token_size=32)
    return ApplicationModel(
        graph=g,
        implementations=[
            make_impl("P", 500),
            make_impl("Q", 700),
            make_impl("R", 300),
        ],
    )
