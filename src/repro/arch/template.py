"""Architecture generation from the template.

The "Generating architecture model" step of Table 1 (1 second, automated):
given a requested tile count and interconnect kind, instantiate a platform
with one master tile (board peripherals) and slave tiles, connected by FSL
links or an SDM mesh NoC.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.interconnect import FSLInterconnect
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.arch.tile import master_tile, slave_tile
from repro.exceptions import ArchitectureError


def architecture_from_template(
    tiles: int,
    interconnect: str = "fsl",
    name: Optional[str] = None,
    instruction_kb: int = 128,
    data_kb: int = 128,
    with_ca: bool = False,
    noc_wires_per_link: int = 32,
    noc_connection_wires: int = 8,
    fsl_fifo_depth: int = 16,
    slave_instruction_kb: Optional[int] = None,
    slave_data_kb: Optional[int] = None,
) -> ArchitectureModel:
    """Instantiate a platform from the MAMPS template.

    Parameters
    ----------
    tiles:
        Number of tiles; tile 0 becomes the master (peripheral owner).
    interconnect:
        ``"fsl"`` for point-to-point links, ``"noc"`` for the SDM mesh.
        Single-tile platforms take no interconnect.
    with_ca:
        Equip every tile with a communication assist (the Section 6.3
        what-if; the paper's current library has none, so the default is
        False).
    slave_instruction_kb, slave_data_kb:
        Memory sizes for the slave tiles when they differ from the master's
        (a heterogeneous mix); default to the master sizes.

    Returns a validated :class:`ArchitectureModel`.
    """
    if tiles < 1:
        raise ArchitectureError("a platform needs at least one tile")
    if interconnect not in ("fsl", "noc"):
        raise ArchitectureError(
            f"unknown interconnect {interconnect!r}; the template offers "
            "'fsl' and 'noc' (Section 5.3.1)"
        )

    tile_list = [
        master_tile(
            "tile0",
            instruction_kb=instruction_kb,
            data_kb=data_kb,
            with_ca=with_ca,
        )
    ]
    for index in range(1, tiles):
        tile_list.append(
            slave_tile(
                f"tile{index}",
                instruction_kb=(
                    slave_instruction_kb
                    if slave_instruction_kb is not None
                    else instruction_kb
                ),
                data_kb=(
                    slave_data_kb if slave_data_kb is not None else data_kb
                ),
                with_ca=with_ca,
            )
        )

    if tiles == 1:
        fabric = None
    elif interconnect == "fsl":
        fabric = FSLInterconnect(fifo_depth_words=fsl_fifo_depth)
    else:
        fabric = SDMNoC(
            [t.name for t in tile_list],
            wires_per_link=noc_wires_per_link,
            default_connection_wires=noc_connection_wires,
        )

    model = ArchitectureModel(
        name=name or f"mamps_{tiles}t_{interconnect}",
        tiles=tile_list,
        interconnect=fabric,
    )
    model.validate()
    return model
