"""Tests for the automated design-space exploration."""

from fractions import Fraction

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.flow.dse import DesignPoint, explore_design_space
from repro.arch.area import AreaEstimate
from repro.sdf import SDFGraph


@pytest.fixture
def app():
    g = SDFGraph("dse_chain")
    for name, t in (("P", 500), ("Q", 700), ("R", 300)):
        g.add_actor(name, execution_time=t)
    g.add_edge("pq", "P", "Q", token_size=16)
    g.add_edge("qr", "Q", "R", token_size=16)

    def impl(actor, wcet):
        return ActorImplementation(
            actor=actor, pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=wcet, memory=MemoryRequirements(4096, 2048)
            ),
        )

    return ApplicationModel(
        graph=g,
        implementations=[impl("P", 500), impl("Q", 700), impl("R", 300)],
    )


class TestExploration:
    def test_evaluates_all_points(self, app):
        result = explore_design_space(
            app, tile_counts=(1, 2, 3), interconnects=("fsl", "noc")
        )
        # 1 tile (deduped) + 2x{fsl,noc} + 3x{fsl,noc}
        assert len(result.points) == 5
        assert not result.failures

    def test_throughput_monotone_in_tiles(self, app):
        result = explore_design_space(
            app, tile_counts=(1, 2, 3), interconnects=("fsl",)
        )
        by_tiles = {p.tiles: p.throughput for p in result.points}
        assert by_tiles[1] <= by_tiles[2] <= by_tiles[3]

    def test_area_monotone_in_tiles(self, app):
        result = explore_design_space(
            app, tile_counts=(1, 2, 3), interconnects=("fsl",)
        )
        by_tiles = {p.tiles: p.area.slices for p in result.points}
        assert by_tiles[1] < by_tiles[2] < by_tiles[3]

    def test_pareto_frontier_is_nondominated(self, app):
        result = explore_design_space(
            app, tile_counts=(1, 2, 3, 4), interconnects=("fsl", "noc")
        )
        frontier = result.pareto_frontier()
        assert frontier
        for point in frontier:
            assert not any(q.dominates(point) for q in result.points)
        # Frontier sorted by area, throughput non-decreasing along it.
        for first, second in zip(frontier, frontier[1:]):
            assert first.area.slices <= second.area.slices
            assert first.throughput <= second.throughput

    def test_best_meeting_constraint(self, app):
        constraint = Fraction(1, 1500)
        result = explore_design_space(
            app,
            tile_counts=(1, 2, 3),
            interconnects=("fsl",),
            constraint=constraint,
        )
        best = result.best_meeting_constraint()
        assert best is not None
        assert best.throughput >= constraint
        cheaper = [
            p for p in result.points if p.area.slices < best.area.slices
        ]
        assert all(not p.constraint_met for p in cheaper)

    def test_unmeetable_constraint(self, app):
        result = explore_design_space(
            app,
            tile_counts=(1, 2),
            interconnects=("fsl",),
            constraint=Fraction(1, 10),  # impossible
        )
        assert result.best_meeting_constraint() is None

    def test_as_table(self, app):
        result = explore_design_space(
            app, tile_counts=(1, 2), interconnects=("fsl",)
        )
        table = result.as_table()
        assert "1t/fsl" in table and "2t/fsl" in table
        assert "pareto" in table


class TestDominance:
    def point(self, throughput, slices):
        return DesignPoint(
            tiles=1, interconnect="fsl", with_ca=False,
            throughput=Fraction(throughput),
            area=AreaEstimate(slices=slices, brams=0),
            constraint_met=True,
        )

    def test_strictly_better_dominates(self):
        assert self.point(2, 100).dominates(self.point(1, 200))

    def test_tradeoff_does_not_dominate(self):
        a = self.point(2, 200)
        b = self.point(1, 100)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_does_not_dominate(self):
        a = self.point(1, 100)
        b = self.point(1, 100)
        assert not a.dominates(b)
