"""Tests for SDF3-style XML I/O and DOT export."""

import xml.etree.ElementTree as ET

import pytest

from repro.exceptions import GraphError
from repro.sdf.io_sdf3 import (
    graph_from_xml,
    graph_to_xml,
    load_graph,
    save_graph,
)
from repro.sdf.visualize import save_dot, to_dot


def assert_graphs_equal(a, b):
    assert a.name == b.name
    assert {x.name for x in a} == {x.name for x in b}
    for actor in a:
        assert b.actor(actor.name).execution_time == actor.execution_time
    assert {e.name for e in a.edges} == {e.name for e in b.edges}
    for edge in a.edges:
        other = b.edge(edge.name)
        assert (edge.src, edge.dst) == (other.src, other.dst)
        assert edge.production == other.production
        assert edge.consumption == other.consumption
        assert edge.initial_tokens == other.initial_tokens
        assert edge.token_size == other.token_size
        assert edge.implicit == other.implicit


def test_roundtrip_figure2(figure2_graph, tmp_path):
    path = tmp_path / "figure2.xml"
    save_graph(figure2_graph, path)
    loaded = load_graph(path)
    assert_graphs_equal(figure2_graph, loaded)


def test_roundtrip_pipeline(two_actor_pipeline, tmp_path):
    path = tmp_path / "p.xml"
    save_graph(two_actor_pipeline, path)
    assert_graphs_equal(two_actor_pipeline, load_graph(path))


def test_xml_structure(figure2_graph):
    root = graph_to_xml(figure2_graph)
    assert root.tag == "sdf3"
    assert root.get("type") == "sdf"
    sdf = root.find("applicationGraph/sdf")
    assert len(sdf.findall("actor")) == 3
    assert len(sdf.findall("channel")) == 4
    properties = root.find("applicationGraph/sdfProperties")
    assert len(properties.findall("actorProperties")) == 3


def test_rates_stored_on_ports(figure2_graph):
    root = graph_to_xml(figure2_graph)
    sdf = root.find("applicationGraph/sdf")
    a = next(el for el in sdf.findall("actor") if el.get("name") == "A")
    out_rates = sorted(
        int(p.get("rate")) for p in a.findall("port") if p.get("type") == "out"
    )
    assert out_rates == [1, 1, 2]


def test_bad_root_rejected():
    with pytest.raises(GraphError, match="sdf3"):
        graph_from_xml(ET.Element("nonsense"))


def test_missing_application_graph_rejected():
    with pytest.raises(GraphError, match="applicationGraph"):
        graph_from_xml(ET.Element("sdf3"))


def test_dot_contains_actors_and_edges(figure2_graph):
    dot = to_dot(figure2_graph)
    for actor in ("A", "B", "C"):
        assert f'"{actor}"' in dot
    assert '"A" -> "B"' in dot
    assert "style=dashed" in dot  # implicit self-edge
    assert "digraph" in dot


def test_dot_shows_rates_and_tokens(figure2_graph):
    dot = to_dot(figure2_graph)
    assert 'taillabel="2"' in dot
    assert "●1" in dot


def test_save_dot(figure2_graph, tmp_path):
    path = tmp_path / "g.dot"
    save_dot(figure2_graph, str(path))
    assert path.read_text().startswith("digraph")
