"""Async flow-serving scheduler: dedup, coalescing, artifact fast path.

The design-time/run-time split of Weichslgartner et al. (PAPERS.md),
operationalized: mapping artifacts are *computed* once -- by a
:class:`~repro.flow.session.FlowSession` running on a bounded worker
pool -- and *served* cheaply ever after, straight from the workspace's
:class:`~repro.artifacts.store.ArtifactStore`.

:class:`FlowScheduler` accepts FlowSpec submissions from any thread and
funnels them through a private asyncio event loop (one dedicated
thread), which serializes all bookkeeping without locks:

* **dedup / coalescing** -- requests are keyed by
  :func:`repro.flow.fingerprint.flow_request_key`, the content hash of
  everything a session reads from the spec.  A request whose key is
  already *in flight* joins the existing job (one computation fans out
  to every waiter); a request whose key is already *served* comes back
  instantly from the stored ``flow-response`` artifact with zero
  re-analysis -- sequentially, concurrently, or after a server restart
  over a warm workspace.
* **bounded execution** -- computations run on a persistent
  :class:`~repro.flow.backend.ExecutionBackend` (the same worker
  plumbing :func:`repro.flow.session.run_batch` fans out on) with at
  most ``max_queue`` jobs queued or running; excess submissions are
  rejected with :class:`QueueFullError` (HTTP 429 at the API layer).
  ``backend="process"`` runs each session in a worker *process* --
  specs ship as :meth:`~repro.flow.spec.FlowSpec.to_document` JSON,
  responses come back as canonical payloads, and the pure-Python
  analyses scale with cores instead of contending on the GIL.  N
  replicas of the scheduler may share one workspace with no
  coordination beyond the filesystem: the store's atomic idempotent
  writes make concurrent computation of the same key safe, and each
  replica carries an identity (``replica`` in health and job views)
  so per-replica counters stay attributable under load.
* **per-stage progress** -- each job subscribes to the session's
  :data:`~repro.flow.session.ProgressCallback`, so a status poll of a
  running job reports which stage is executing and which stages
  computed vs resumed.

The served document, :class:`FlowResponse`, is the *deterministic*
projection of a session result: the canonical mapping payloads per
use-case, the use-case union, guarantees and constraint verdicts --
but no wall-clock stage timings.  Two computations of the same request,
on any machine under any scheduling, therefore produce byte-identical
canonical payloads, and every embedded mapping payload is byte-identical
to the ``mapping-result`` artifact ``repro run --workspace`` persists
for the same spec.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.artifacts.schema import (
    canonical_json,
    from_payload,
    register,
    to_payload,
)
from repro.artifacts.store import ArtifactStore
from repro.exceptions import ReproError, UnknownAppError
from repro.flow.backend import (
    ExecutionBackend,
    as_backend,
    backend_task,
)
from repro.flow.fingerprint import flow_request_key
from repro.flow.session import SessionResult, StageRecord, execute_spec
from repro.flow.spec import FlowSpec, load_flow_spec
from repro.flow.usecases import UseCaseMapping
from repro.mapping.spec import MappingResult
from repro.runtime.manager import PlatformManager
from repro.power import power_counters
from repro.sdf.engine import engine_counters

#: Artifact kind of the served response documents.
RESPONSE_KIND = "flow-response"

#: Job lifecycle states (``status`` in every job view).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Where a completed job's response came from (``source`` in the view).
SOURCE_COMPUTED = "computed"
SOURCE_ARTIFACTS = "artifacts"


class FlowServiceError(ReproError):
    """Raised for scheduler misuse and failed service operations."""


class QueueFullError(FlowServiceError):
    """Raised when a submission exceeds the scheduler's queue bound."""


class UnknownJobError(FlowServiceError):
    """Raised when a job id does not name a tracked job."""


# ----------------------------------------------------------------------
# the served document
# ----------------------------------------------------------------------
@dataclass
class FlowResponse:
    """Deterministic result document of one served flow request.

    A projection of :class:`~repro.flow.session.SessionResult` that
    excludes everything wall-clock (stage timings, computed-vs-resumed
    provenance): only the analysis content survives, so the canonical
    payload of a request is a pure function of the request -- the
    property the service's byte-identity guarantee rests on.  Stage
    provenance is still observable per job via the status endpoint.
    """

    spec_name: str
    request_key: str
    mappings: Dict[str, MappingResult]
    use_cases: Optional[UseCaseMapping] = None

    @classmethod
    def from_session(
        cls, request_key: str, result: SessionResult
    ) -> "FlowResponse":
        return cls(
            spec_name=result.spec_name,
            request_key=request_key,
            mappings=dict(result.mappings),
            use_cases=result.use_cases,
        )

    def guarantees(self) -> Dict[str, str]:
        """Exact guaranteed throughput per use-case (fraction strings)."""
        return {
            name: str(result.guaranteed_throughput)
            for name, result in sorted(self.mappings.items())
        }

    def constraints_met(self) -> bool:
        return all(r.constraint_met for r in self.mappings.values())


def _encode_response(response: FlowResponse) -> Dict[str, Any]:
    return {
        "spec_name": response.spec_name,
        "request_key": response.request_key,
        "mappings": {
            name: to_payload(result)
            for name, result in response.mappings.items()
        },
        "use_cases": (
            None
            if response.use_cases is None
            else to_payload(response.use_cases)
        ),
        "guarantees": response.guarantees(),
        "constraints_met": response.constraints_met(),
    }


def _decode_response(payload: Dict[str, Any]) -> FlowResponse:
    return FlowResponse(
        spec_name=payload["spec_name"],
        request_key=payload["request_key"],
        mappings={
            name: from_payload(p)
            for name, p in payload["mappings"].items()
        },
        use_cases=(
            None
            if payload["use_cases"] is None
            else from_payload(payload["use_cases"])
        ),
    )


register(RESPONSE_KIND, FlowResponse, _encode_response, _decode_response)


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
class Job:
    """One scheduled flow request and its (possibly shared) outcome.

    Mutated from two threads -- the scheduler loop (status transitions)
    and the worker running the session (stage progress) -- so all state
    lives behind one lock and escapes only as :meth:`view` snapshots.
    """

    def __init__(
        self,
        job_id: str,
        request_key: str,
        spec: FlowSpec,
        replica: str = "",
    ):
        self.id = job_id
        self.request_key = request_key
        self.spec = spec
        self.spec_name = spec.name
        self.replica = replica
        self.done = threading.Event()
        self._lock = threading.Lock()
        self._status = QUEUED
        self._source: Optional[str] = None
        self._error: Optional[str] = None
        self._stages: List[Dict[str, Any]] = []
        self._payload_text: Optional[str] = None

    # -- session-side: the ProgressCallback of this job's session ------
    def record_progress(
        self, event: str, stage: str, record: Optional[StageRecord]
    ) -> None:
        with self._lock:
            if event == "start":
                self._stages.append(
                    {"stage": stage, "status": RUNNING, "seconds": None}
                )
            elif event == "finish" and record is not None:
                for entry in reversed(self._stages):
                    if entry["stage"] == stage:
                        entry["status"] = record.status
                        entry["seconds"] = record.seconds
                        break

    def replace_stages(self, entries: List[Dict[str, Any]]) -> None:
        """Backfill stage records computed in a worker process.

        A process-backed job cannot stream per-stage progress across
        the boundary; the worker returns the finished stage list with
        its result and it lands here in one shot.
        """
        with self._lock:
            self._stages = [dict(entry) for entry in entries]

    # -- scheduler-side transitions ------------------------------------
    def mark_running(self) -> None:
        with self._lock:
            self._status = RUNNING

    def mark_done(self, source: str, payload_text: str) -> None:
        with self._lock:
            self._status = DONE
            self._source = source
            self._payload_text = payload_text
        self.done.set()

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self._status = FAILED
            self._error = error
            # the stage whose compute raised got a "start" event but no
            # "finish"; a failed job must not report a running stage
            for entry in self._stages:
                if entry["status"] == RUNNING:
                    entry["status"] = FAILED
        self.done.set()

    # -- reads ---------------------------------------------------------
    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    def result_text(self) -> Optional[str]:
        """The exact canonical response document (``None`` until done)."""
        with self._lock:
            return self._payload_text

    def view(self, coalesced: bool = False) -> Dict[str, Any]:
        """JSON-able snapshot of the job, as the API serves it."""
        with self._lock:
            return {
                "id": self.id,
                "request_key": self.request_key,
                "spec_name": self.spec_name,
                "status": self._status,
                "source": self._source,
                "error": self._error,
                "coalesced": coalesced,
                "replica": self.replica,
                "stages": [dict(entry) for entry in self._stages],
            }


@dataclass
class ServiceCounters:
    """Monotonic service counters, surfaced by ``GET /v1/healthz``."""

    submitted: int = 0
    coalesced: int = 0
    artifact_hits: int = 0
    computed: int = 0
    failed: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "artifact_hits": self.artifact_hits,
            "computed": self.computed,
            "failed": self.failed,
        }


# ----------------------------------------------------------------------
# the process-shippable computation
# ----------------------------------------------------------------------
@backend_task("service.compute-response")
def _compute_response_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process side of one flow computation.

    The request crosses the boundary as its spec document plus the
    request key; the worker runs the session against the shared
    workspace, persists the ``flow-response`` artifact (atomic,
    idempotent -- concurrent workers and replicas computing the same
    key write identical bytes) and returns the exact canonical
    response text plus the finished stage records for the job view.
    """
    spec = FlowSpec.from_dict(payload["document"])
    workspace = Path(payload["workspace"])
    store = ArtifactStore(workspace / "artifacts")
    result = execute_spec(spec, workspace, store=store)
    response = FlowResponse.from_session(payload["request_key"], result)
    document = to_payload(response)
    store.put(RESPONSE_KIND, payload["request_key"], document)
    return {
        "text": canonical_json(document) + "\n",
        "stages": [
            {
                "stage": record.stage,
                "status": record.status,
                "seconds": record.seconds,
            }
            for record in result.stages
        ],
    }


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class FlowScheduler:
    """Accepts FlowSpec submissions; dedups, coalesces, runs, serves.

    Thread-safe facade over a private asyncio loop: every public method
    may be called from any thread (the HTTP layer calls from its
    per-connection handler threads).  See the module docstring for the
    submission semantics; :meth:`close` drains in-flight jobs and shuts
    the loop and worker pool down.
    """

    def __init__(
        self,
        workspace: Union[str, Path],
        jobs: int = 2,
        max_queue: int = 32,
        store: Optional[ArtifactStore] = None,
        history_limit: int = 1024,
        backend: Union[None, str, ExecutionBackend] = None,
        replica: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise FlowServiceError(f"jobs must be >= 1, got {jobs}")
        if max_queue < 1:
            raise FlowServiceError(
                f"max_queue must be >= 1, got {max_queue}"
            )
        if history_limit < 1:
            raise FlowServiceError(
                f"history_limit must be >= 1, got {history_limit}"
            )
        self.workspace = Path(workspace)
        self.store = (
            store
            if store is not None
            else ArtifactStore(self.workspace / "artifacts")
        )
        self.max_queue = max_queue
        self.history_limit = history_limit
        #: The execution backend ("pool" is its historic name here):
        #: "thread" computes in this process, "process" on worker
        #: processes (platform operations stay thread-side either way).
        self.pool = as_backend(backend, jobs)
        #: Replica identity, surfaced in health and every job view so
        #: load tests can attribute per-replica computed/coalesced
        #: counts when N schedulers share one workspace.
        self.replica = (
            replica if replica else f"replica-{os.getpid()}"
        )
        # fork the process-backend workers now, while this process is
        # quiet -- forking lazily at first request risks inheriting a
        # lock another thread holds mid-operation
        self.pool.warm()
        self.counters = ServiceCounters()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._platform: Optional[PlatformManager] = None
        self._ids = itertools.count(1)
        self._pending = 0  # queued + running; loop-thread only
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="flow-scheduler",
            daemon=True,
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # public API (any thread)
    # ------------------------------------------------------------------
    def submit(
        self, request: Union[FlowSpec, Dict[str, Any], str, Path]
    ) -> Dict[str, Any]:
        """Submit one flow request; returns the job view.

        ``request`` is a :class:`FlowSpec`, a parsed spec document
        (what ``POST /v1/flows`` receives), or a path to a spec file.
        Malformed documents raise
        :class:`~repro.flow.spec.FlowSpecError` before anything is
        enqueued; a full queue raises :class:`QueueFullError`.
        """
        spec = self._coerce(request)
        return self._call(self._submit(spec))

    def get(self, job_id: str) -> Dict[str, Any]:
        """Current view of one job; raises :class:`UnknownJobError`."""
        return self._job(job_id).view()

    def wait(self, job_id: str, timeout: float = 300.0) -> Dict[str, Any]:
        """Block until the job completes (or ``timeout`` seconds pass)."""
        job = self._job(job_id)
        if not job.done.wait(timeout):
            raise FlowServiceError(
                f"job {job_id} still {job.status!r} after {timeout:g}s"
            )
        return job.view()

    def result_text(self, job_id: str) -> Optional[str]:
        """Exact canonical response text of a done job, else ``None``."""
        return self._job(job_id).result_text()

    def health(self) -> Dict[str, Any]:
        """Queue depth plus the monotonic counters (``/v1/healthz``).

        ``engine`` exposes the process-wide throughput-engine tier
        counters (:func:`repro.sdf.engine.engine_counters`): how many
        analyses the analytic / vectorized / reference tiers served
        since the process started.  ``power`` exposes the power-model
        counters (:func:`repro.power.power_counters`): how many platform
        power / application energy estimates were computed (zero unless
        a client opted into budgets; see docs/power.md).
        """
        platform = self._platform
        return {
            "status": "ok",
            "workspace": str(self.workspace),
            "replica": self.replica,
            "backend": self.pool.name,
            "worker_slots": self.pool.jobs,
            "max_queue": self.max_queue,
            "history_limit": self.history_limit,
            "queue_depth": self._pending,
            "jobs_tracked": len(self._jobs),
            "counters": self.counters.snapshot(),
            "engine": engine_counters().snapshot(),
            "power": power_counters().snapshot(),
            "platform": (
                platform.occupancy()
                if platform is not None
                else {"configured": False}
            ),
        }

    # -- the run-time platform (``/v1/platform``) ----------------------
    def platform_admit(
        self, request: Union[FlowSpec, Dict[str, Any], str, Path]
    ) -> Dict[str, Any]:
        """Admit one application onto the workspace's platform.

        The first admission configures the platform to the spec's
        architecture (or resumes the journaled one); later admissions
        must target the same architecture.  Raises
        :class:`~repro.exceptions.AdmissionError` (HTTP 409) when the
        application does not fit the residual platform.  Admission
        flows through the same bounded queue as flow computations.
        """
        spec = self._coerce(request)
        return self._call(self._platform_admit(spec), timeout=600.0)

    def platform_depart(
        self, app_id: str, migrate: bool = False
    ) -> Dict[str, Any]:
        """Depart ``app_id``; optionally migrate the survivors."""
        return self._call(
            self._platform_depart(app_id, migrate), timeout=600.0
        )

    def platform_status(self) -> Dict[str, Any]:
        """Full platform state (``GET /v1/platform``)."""
        return self._call(self._platform_status())

    def close(self, timeout: float = 60.0) -> None:
        """Drain in-flight jobs, stop the loop, shut the pool down.

        Bounded by ``timeout``: if the drain times out (a wedged job),
        the pool is released without joining its workers, so the caller
        gets control back instead of blocking behind the hung session.
        On the process backend that prompt path *terminates* the worker
        processes (and cancels queued work), so an interrupted
        ``repro serve`` leaves no orphaned children behind a hung job.
        """
        if self._closed:
            return
        self._closed = True
        drained = True
        try:
            asyncio.run_coroutine_threadsafe(
                self._drain(), self._loop
            ).result(timeout)
        except Exception:  # noqa: BLE001 - best-effort drain; shutdown
            drained = False  # proceed; don't wait on the hung job twice
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()
        self.pool.close(wait=drained)

    def __enter__(self) -> "FlowScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # loop-side internals
    # ------------------------------------------------------------------
    async def _submit(self, spec: FlowSpec) -> Dict[str, Any]:
        self.counters.submitted += 1
        key = flow_request_key(spec)
        inflight = self._inflight.get(key)
        if inflight is not None:
            # coalesce: one computation fans out to every waiter
            self.counters.coalesced += 1
            return inflight.view(coalesced=True)
        text = self.store.get_text(RESPONSE_KIND, key)
        if text is not None:
            # the run-time fast path: served straight from artifacts.
            # The document rides along in the submit response -- it is
            # already in hand, and making the client fetch it by id
            # would race bounded-history eviction under load.
            self.counters.artifact_hits += 1
            job = self._new_job(key, spec)
            job.mark_done(SOURCE_ARTIFACTS, text)
            view = job.view()
            view["result"] = json.loads(text)
            return view
        if self._pending >= self.max_queue:
            raise QueueFullError(
                f"queue full: {self._pending} job(s) pending "
                f"(max {self.max_queue}); retry later"
            )
        job = self._new_job(key, spec)
        self._inflight[key] = job
        self._pending += 1
        asyncio.ensure_future(self._run(job), loop=self._loop)
        return job.view()

    async def _run(self, job: Job) -> None:
        try:
            if self.pool.name == "process":
                # the job leaves this process: mark it running at
                # dispatch (no cross-process progress stream) and
                # backfill its stage records with the result
                job.mark_running()
                outcome = await asyncio.wrap_future(
                    self.pool.submit_task(
                        "service.compute-response",
                        {
                            "document": job.spec.to_document(),
                            "workspace": str(self.workspace),
                            "request_key": job.request_key,
                        },
                    )
                )
                job.replace_stages(outcome["stages"])
                text = outcome["text"]
            else:
                text = await asyncio.wrap_future(
                    self.pool.submit(self._compute, job)
                )
        except Exception as error:  # noqa: BLE001 - job outcomes are
            # reported through the job, never crash the scheduler loop
            detail = (
                str(error)
                if isinstance(error, ReproError)
                else f"{type(error).__name__}: {error}"
            )
            job.mark_failed(detail)
            self.counters.failed += 1
        else:
            job.mark_done(SOURCE_COMPUTED, text)
            self.counters.computed += 1
        finally:
            self._pending -= 1
            self._inflight.pop(job.request_key, None)

    def _ensure_platform(self, arch_spec=None) -> Optional[PlatformManager]:
        """Loop-thread only: resume or configure the platform manager.

        With a journaled platform in the workspace, the manager replays
        it (zero analyses); otherwise ``arch_spec`` (when given)
        configures a fresh one.
        """
        if self._platform is None:
            self._platform = PlatformManager.open(
                store=self.store, arch_spec=arch_spec
            )
        return self._platform

    async def _platform_admit(self, spec: FlowSpec) -> Dict[str, Any]:
        manager = self._ensure_platform(spec.architecture)
        if self._pending >= self.max_queue:
            raise QueueFullError(
                f"queue full: {self._pending} job(s) pending "
                f"(max {self.max_queue}); retry later"
            )
        self._pending += 1
        try:
            # admission may run a spiral fallback analysis: worker pool,
            # like any other heavy job (library hits return in ~ms)
            return await asyncio.wrap_future(
                self.pool.submit(manager.admit, spec)
            )
        finally:
            self._pending -= 1

    async def _platform_depart(
        self, app_id: str, migrate: bool
    ) -> Dict[str, Any]:
        manager = self._ensure_platform()
        if manager is None:
            raise UnknownAppError(
                f"no platform configured; cannot depart {app_id!r}"
            )
        self._pending += 1
        try:
            return await asyncio.wrap_future(
                self.pool.submit(manager.depart, app_id, migrate)
            )
        finally:
            self._pending -= 1

    async def _platform_status(self) -> Dict[str, Any]:
        manager = self._ensure_platform()
        if manager is None:
            return {"configured": False}
        return manager.status()

    async def _drain(self) -> None:
        tasks = [
            task
            for task in asyncio.all_tasks(self._loop)
            if task is not asyncio.current_task()
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # worker-side
    # ------------------------------------------------------------------
    def _compute(self, job: Job) -> str:
        """Run the session and persist the response (worker thread).

        The running transition happens here, not at enqueue time, so a
        status poll distinguishes a job waiting for a worker slot
        (``queued``) from one actually executing (``running``).
        """
        job.mark_running()
        result = execute_spec(
            job.spec,
            self.workspace,
            store=self.store,
            progress=job.record_progress,
        )
        response = FlowResponse.from_session(job.request_key, result)
        payload = to_payload(response)
        self.store.put(RESPONSE_KIND, job.request_key, payload)
        # exactly the stored document: canonical text + trailing newline
        return canonical_json(payload) + "\n"

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _coerce(
        self, request: Union[FlowSpec, Dict[str, Any], str, Path]
    ) -> FlowSpec:
        if isinstance(request, FlowSpec):
            return request
        if isinstance(request, dict):
            return FlowSpec.from_dict(request)
        return load_flow_spec(request)

    def _call(self, coro, timeout: float = 30.0) -> Any:
        """Run one coroutine on the loop from any thread, bounded.

        The scheduler coroutines only do bookkeeping (never a session),
        so a healthy loop answers in microseconds; the timeout exists
        for the shutdown race, where a submission lands after
        :meth:`close` stopped the loop and its callback would otherwise
        never run -- the caller gets an error instead of a hung thread.
        """
        if self._closed:
            coro.close()
            raise FlowServiceError("scheduler is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except FutureTimeout:
            future.cancel()
            raise FlowServiceError(
                f"scheduler did not respond within {timeout:g}s "
                "(shutting down?)"
            ) from None

    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def _new_job(self, key: str, spec: FlowSpec) -> Job:
        """Track a new job, evicting the oldest *finished* ones.

        Job views (and their response texts) are transient serving
        state -- the durable record is the workspace artifact -- so the
        tracked-job map is bounded at ``history_limit``: a long-running
        server's memory stays flat under sustained traffic.  Queued and
        running jobs are never evicted; a status poll for an evicted id
        gets 404, and resubmitting the request is an artifact hit.
        Loop-thread only, like all ``_jobs`` mutations.
        """
        job = Job(
            f"job-{next(self._ids):06d}", key, spec, replica=self.replica
        )
        self._jobs[job.id] = job
        if len(self._jobs) > self.history_limit:
            for old in list(self._jobs.values()):
                if len(self._jobs) <= self.history_limit:
                    break
                if old.done.is_set():
                    del self._jobs[old.id]
        return job
