"""Synchronous dataflow (SDF) substrate.

This subpackage implements the analysis core that the paper obtains from the
SDF3 tool set [14]: the SDF graph data structure, consistency analysis
(repetition vectors), deadlock detection, self-timed execution, state-space
throughput analysis, maximum-cycle-mean analysis on homogeneous graphs and
buffer-size modelling.

The central type is :class:`~repro.sdf.graph.SDFGraph`.  A quick tour::

    from repro.sdf import SDFGraph

    g = SDFGraph("example")
    g.add_actor("A", execution_time=100)
    g.add_actor("B", execution_time=50)
    g.add_edge("a2b", "A", "B", production=2, consumption=1)
    g.add_edge("self_A", "A", "A", initial_tokens=1)

    from repro.sdf import repetition_vector, analyze_throughput
    q = repetition_vector(g)          # {"A": 1, "B": 2}
    result = analyze_throughput(g)    # iterations per clock cycle
"""

from repro.sdf.graph import Actor, Edge, SDFGraph
from repro.sdf.repetition import is_consistent, repetition_vector
from repro.sdf.deadlock import is_deadlock_free
from repro.sdf.engine import (
    ENGINE_MODES,
    EngineUnsupportedError,
    ThroughputEngine,
    build_simulator,
    collect_engine_counters,
    engine_counters,
)
from repro.sdf.throughput import (
    ThroughputAnalyzer,
    ThroughputResult,
    analyze_throughput,
)
from repro.sdf.simulation import SelfTimedSimulator, SimulationTrace
from repro.sdf.hsdf import to_hsdf
from repro.sdf.mcm import maximum_cycle_mean
from repro.sdf.buffers import (
    BufferDistribution,
    add_buffer_edges,
    minimal_buffer_distribution,
    retune_buffer_capacity,
)
from repro.sdf.latency import (
    first_iteration_latency,
    source_to_sink_latency,
)
from repro.sdf.builders import (
    chain_graph,
    check_well_formed,
    diamond_graph,
    ring_graph,
    split_join_graph,
)

__all__ = [
    "Actor",
    "Edge",
    "SDFGraph",
    "repetition_vector",
    "is_consistent",
    "is_deadlock_free",
    "analyze_throughput",
    "ENGINE_MODES",
    "EngineUnsupportedError",
    "ThroughputEngine",
    "build_simulator",
    "collect_engine_counters",
    "engine_counters",
    "ThroughputAnalyzer",
    "ThroughputResult",
    "SelfTimedSimulator",
    "SimulationTrace",
    "to_hsdf",
    "maximum_cycle_mean",
    "BufferDistribution",
    "add_buffer_edges",
    "minimal_buffer_distribution",
    "retune_buffer_capacity",
    "first_iteration_latency",
    "source_to_sink_latency",
    "chain_graph",
    "check_well_formed",
    "diamond_graph",
    "ring_graph",
    "split_join_graph",
]
