"""Assembly of the MJPEG application model (the Fig. 5 graph).

Builds the SDF graph exactly as drawn -- five actors, the fixed 10-block
VLD output rate, the ``subHeader1``/``subHeader2`` forwarding channels and
the ``vldState``/``rasterState`` self-edges -- and attaches functional
implementations with scenario-based WCETs and memory metrics.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.mjpeg.actors import MJPEGActorSet, MJPEGCostModel
from repro.mjpeg.encoder import EncodedSequence, MAX_BLOCKS_PER_MCU
from repro.sdf import SDFGraph

#: Bytes of one block token: 64 int16 levels/coefficients/samples plus a
#: small descriptor (component id, validity, nonzero count).
BLOCK_TOKEN_BYTES = 64 * 2 + 4
#: Bytes of one spatial-sample block token (uint8 samples + descriptor).
SAMPLE_TOKEN_BYTES = 64 + 4
#: Bytes of a subheader token (width, height, sampling, flags).
HEADER_TOKEN_BYTES = 8


def mjpeg_graph(encoded: EncodedSequence,
                cost: Optional[MJPEGCostModel] = None) -> SDFGraph:
    """The Fig. 5 SDF graph with WCET execution times for ``encoded``."""
    cost = cost or MJPEGCostModel()
    real_blocks = encoded.blocks_per_mcu
    mcu_pixels = encoded.mcu_width * encoded.mcu_height
    pixel_token_bytes = mcu_pixels * 3 + 8

    g = SDFGraph("mjpeg")
    g.add_actor("VLD", execution_time=cost.vld_wcet(real_blocks))
    g.add_actor("IQZZ", execution_time=cost.iqzz_wcet())
    g.add_actor("IDCT", execution_time=cost.idct_wcet())
    g.add_actor("CC", execution_time=cost.cc_wcet(mcu_pixels))
    g.add_actor("Raster", execution_time=cost.raster_wcet(mcu_pixels))

    g.add_edge(
        "vld2iqzz", "VLD", "IQZZ",
        production=MAX_BLOCKS_PER_MCU, consumption=1,
        token_size=BLOCK_TOKEN_BYTES,
    )
    g.add_edge(
        "iqzz2idct", "IQZZ", "IDCT",
        production=1, consumption=1,
        token_size=BLOCK_TOKEN_BYTES,
    )
    g.add_edge(
        "idct2cc", "IDCT", "CC",
        production=1, consumption=MAX_BLOCKS_PER_MCU,
        token_size=SAMPLE_TOKEN_BYTES,
    )
    g.add_edge(
        "cc2raster", "CC", "Raster",
        production=1, consumption=1,
        token_size=pixel_token_bytes,
    )
    g.add_edge(
        "subHeader1", "VLD", "CC",
        production=1, consumption=1,
        token_size=HEADER_TOKEN_BYTES,
    )
    g.add_edge(
        "subHeader2", "VLD", "Raster",
        production=1, consumption=1,
        token_size=HEADER_TOKEN_BYTES,
    )
    g.add_edge("vldState", "VLD", "VLD", initial_tokens=1, implicit=True)
    g.add_edge(
        "rasterState", "Raster", "Raster", initial_tokens=1, implicit=True
    )
    return g


def build_mjpeg_application(
    encoded: EncodedSequence,
    cost: Optional[MJPEGCostModel] = None,
    pe_type: str = "microblaze",
) -> ApplicationModel:
    """The complete MJPEG application model for one encoded sequence."""
    cost = cost or MJPEGCostModel()
    actors = MJPEGActorSet(encoded=encoded, cost=cost)
    graph = mjpeg_graph(encoded, cost)
    mcu_pixels = encoded.mcu_width * encoded.mcu_height
    framebuffer_bytes = encoded.width * encoded.height * 3

    def metrics(wcet: int, instr_kb: int, data_bytes: int):
        return ImplementationMetrics(
            wcet=wcet,
            memory=MemoryRequirements(
                instruction_bytes=instr_kb * 1024, data_bytes=data_bytes
            ),
        )

    implementations = [
        ActorImplementation(
            actor="VLD",
            pe_type=pe_type,
            metrics=metrics(
                cost.vld_wcet(encoded.blocks_per_mcu), 24,
                16 * 1024 + len(encoded.data) // 64,
            ),
            function=actors.vld,
            init_function=actors.vld_init,
            argument_order=["vld2iqzz", "subHeader1", "subHeader2"],
        ),
        ActorImplementation(
            actor="IQZZ",
            pe_type=pe_type,
            metrics=metrics(cost.iqzz_wcet(), 4, 4 * 1024),
            function=actors.iqzz,
            argument_order=["vld2iqzz", "iqzz2idct"],
        ),
        ActorImplementation(
            actor="IDCT",
            pe_type=pe_type,
            metrics=metrics(cost.idct_wcet(), 12, 6 * 1024),
            function=actors.idct,
            argument_order=["iqzz2idct", "idct2cc"],
        ),
        ActorImplementation(
            actor="CC",
            pe_type=pe_type,
            metrics=metrics(
                cost.cc_wcet(mcu_pixels), 8, 8 * 1024 + mcu_pixels * 3
            ),
            function=actors.cc,
            argument_order=["idct2cc", "subHeader1", "cc2raster"],
        ),
        ActorImplementation(
            actor="Raster",
            pe_type=pe_type,
            metrics=metrics(
                cost.raster_wcet(mcu_pixels), 6,
                8 * 1024 + 2 * framebuffer_bytes,
            ),
            function=actors.raster,
            argument_order=["cc2raster", "subHeader2"],
        ),
    ]
    return ApplicationModel(
        graph=graph,
        implementations=implementations,
        name="mjpeg",
    )
