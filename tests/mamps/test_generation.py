"""Tests for MAMPS platform generation (netlist, software, memory, XPS)."""

import pytest

from repro.arch import architecture_from_template
from repro.exceptions import GenerationError
from repro.mamps import compute_memory_maps, generate_platform
from repro.mamps.hardware import parse_netlist
from repro.mapping import map_application


@pytest.fixture
def generated(functional_app):
    arch = architecture_from_template(3, "fsl")
    result = map_application(functional_app, arch)
    project = generate_platform(functional_app, arch, result)
    return functional_app, arch, result, project


class TestProjectBundle:
    def test_expected_files_present(self, generated):
        app, arch, result, project = generated
        paths = project.paths()
        assert "system.mhs" in paths
        assert "build.tcl" in paths
        assert "mapping.txt" in paths
        assert "throughput.txt" in paths
        for tile in result.mapping.used_tiles():
            assert f"src/{tile}/main.c" in paths

    def test_write_to_disk(self, generated, tmp_path):
        _, _, _, project = generated
        root = project.write_to(tmp_path)
        assert (root / "system.mhs").exists()
        assert (root / "build.tcl").exists()

    def test_duplicate_file_rejected(self, generated):
        _, _, _, project = generated
        with pytest.raises(GenerationError, match="already has"):
            project.add("system.mhs", "again")

    def test_missing_file_lookup(self, generated):
        _, _, _, project = generated
        with pytest.raises(GenerationError, match="no file"):
            project.file("nope.c")


class TestNetlist:
    def test_instances_cover_used_tiles(self, generated):
        app, arch, result, project = generated
        instances = parse_netlist(project.file("system.mhs"))
        names = [name for _kind, name in instances]
        for tile in result.mapping.used_tiles():
            assert f"{tile}_pe" in names
            assert f"{tile}_imem" in names
            assert f"{tile}_dmem" in names
            assert f"{tile}_ni" in names

    def test_fsl_links_instantiated(self, generated):
        app, arch, result, project = generated
        instances = parse_netlist(project.file("system.mhs"))
        kinds = [kind for kind, _name in instances]
        inter = result.mapping.inter_tile_channels()
        assert kinds.count("fsl_v20") == len(inter)

    def test_noc_routers_instantiated(self, functional_app):
        arch = architecture_from_template(4, "noc")
        result = map_application(functional_app, arch)
        project = generate_platform(functional_app, arch, result)
        instances = parse_netlist(project.file("system.mhs"))
        kinds = [kind for kind, _name in instances]
        assert kinds.count("sdm_router") == 4  # 2x2 mesh
        assert kinds.count("sdm_connection") == len(
            result.mapping.inter_tile_channels()
        )

    def test_memory_parameters_reflect_sizing(self, generated):
        app, arch, result, project = generated
        text = project.file("system.mhs")
        assert "C_USED_BYTES" in text


class TestSoftware:
    def test_main_contains_wrappers_and_schedule(self, generated):
        app, arch, result, project = generated
        for tile in result.mapping.used_tiles():
            source = project.file(f"src/{tile}/main.c")
            for actor in result.mapping.actors_on(tile):
                assert f"wrapper_{actor}" in source
                assert f"{actor}(" in source
            assert "scheduler_run" in source
            assert "comm_init" in source
            assert "int main(void)" in source

    def test_schedule_table_matches_order(self, generated):
        app, arch, result, project = generated
        for tile, order in result.mapping.static_orders.items():
            source = project.file(f"src/{tile}/main.c")
            for actor in order:
                assert f"wrapper_{actor}" in source

    def test_send_calls_for_inter_tile_channels(self, generated):
        app, arch, result, project = generated
        for channel in result.mapping.inter_tile_channels():
            edge = app.graph.edge(channel.edge)
            src_main = project.file(f"src/{channel.src_tile}/main.c")
            assert f"ni_send_tokens(buffer_{channel.edge}_src" in src_main


class TestMemoryMaps:
    def test_regions_are_disjoint_and_ordered(self, generated):
        app, arch, result, _ = generated
        maps = compute_memory_maps(app, arch, result.mapping)
        for memory_map in maps.values():
            for regions in (memory_map.instruction_regions,
                            memory_map.data_regions):
                for first, second in zip(regions, regions[1:]):
                    assert second.base == first.end

    def test_buffers_have_regions(self, generated):
        app, arch, result, _ = generated
        maps = compute_memory_maps(app, arch, result.mapping)
        for channel in result.mapping.inter_tile_channels():
            src_map = maps[channel.src_tile]
            assert src_map.region(f"buffer_{channel.edge}_src").size > 0
            dst_map = maps[channel.dst_tile]
            assert dst_map.region(f"buffer_{channel.edge}_dst").size > 0

    def test_overflow_detected(self, functional_app):
        from repro.arch import ArchitectureModel, FSLInterconnect, Tile
        from repro.arch.tile import Memory

        # Tiny data memory: runtime data alone (4 kB) exceeds 2 kB.
        arch3 = architecture_from_template(3)
        result = map_application(functional_app, arch3)
        tiny = ArchitectureModel(
            name=arch3.name,
            tiles=[
                Tile(
                    name=t.name,
                    role=t.role,
                    peripherals=t.peripherals,
                    data_memory=Memory(2 * 1024),
                )
                for t in arch3.tiles
            ],
            interconnect=arch3.interconnect,
        )
        with pytest.raises(GenerationError, match="data memory"):
            compute_memory_maps(functional_app, tiny, result.mapping)

    def test_wrong_architecture_rejected(self, functional_app):
        arch = architecture_from_template(3)
        other = architecture_from_template(4)
        result = map_application(functional_app, arch)
        with pytest.raises(GenerationError, match="architecture"):
            generate_platform(functional_app, other, result)
