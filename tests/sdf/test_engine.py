"""Tests for the tiered throughput engine facade."""

from fractions import Fraction

import pytest

from repro.exceptions import DeadlockError, SimulationError
from repro.sdf import SDFGraph
from repro.sdf.buffers import (
    BufferDistribution,
    add_buffer_edges,
    retune_buffer_capacity,
)
from repro.sdf.engine import (
    ENGINE_MODES,
    MAX_HSDF_COPIES,
    EngineCounters,
    EngineUnsupportedError,
    ThroughputEngine,
    collect_engine_counters,
    engine_counters,
    normalize_engine_mode,
)
from repro.sdf.latency import (
    first_iteration_latency,
    source_to_sink_latency,
)
from repro.sdf.throughput import ThroughputResult, analyze_throughput


def bounded(graph, capacities):
    return add_buffer_edges(graph, BufferDistribution(capacities))


@pytest.fixture
def figure2_bounded(figure2_graph):
    return bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})


@pytest.fixture
def long_transient_bounded(two_actor_pipeline):
    """P(5) -> Q(7) with 40 credits: the producer creeps ahead for ~130
    iterations before the state recurs -- far beyond the probe."""
    return bounded(two_actor_pipeline, {"p2q": 40})


# ----------------------------------------------------------------------
# tier policy
# ----------------------------------------------------------------------
class TestTierPolicy:
    def test_short_state_space_stays_on_the_probe(self, figure2_bounded):
        # Eligible for analytic, but the state space recurs within the
        # probe -- simulation already was the cheaper exact analysis.
        engine = ThroughputEngine(figure2_bounded)
        assert engine.analytic_decline_reason is None
        assert engine.tier_for() == ("analytic", None)
        result = engine.analyze()
        assert result.tier == "vectorized"
        assert "probe" in result.tier_reason
        assert result.throughput == Fraction(1, 6)

    def test_long_state_space_escalates_to_analytic(
        self, long_transient_bounded
    ):
        engine = ThroughputEngine(long_transient_bounded)
        result = engine.analyze()
        assert result.tier == "analytic"
        assert "outlived" in result.tier_reason
        assert result.throughput == Fraction(1, 7)
        reference = ThroughputEngine(
            long_transient_bounded, mode="reference"
        ).analyze()
        assert result.throughput == reference.throughput

    def test_mcm_budget_falls_back_to_vectorized(
        self, long_transient_bounded, monkeypatch
    ):
        import repro.sdf.engine as engine_module

        monkeypatch.setattr(engine_module, "MCM_RELAXATION_FACTOR", 0)
        result = ThroughputEngine(long_transient_bounded).analyze()
        assert result.tier == "vectorized"
        assert "relaxation budget" in result.tier_reason
        assert result.throughput == Fraction(1, 7)

    def test_analytic_agrees_with_reference_value(self, figure2_bounded):
        analytic = ThroughputEngine(
            figure2_bounded, mode="analytic"
        ).analyze()
        reference = ThroughputEngine(
            figure2_bounded, mode="reference"
        ).analyze()
        assert analytic.throughput == reference.throughput

    def test_static_order_declines_analytic(self, figure2_bounded):
        engine = ThroughputEngine(
            figure2_bounded,
            processor_of={"A": "t", "B": "t", "C": "t"},
            static_order={"t": ["A", "B", "B", "C"]},
        )
        tier, reason = engine.tier_for()
        assert tier == "vectorized"
        assert "static-order" in reason
        result = engine.analyze()
        assert result.tier == "vectorized"
        assert result.tier_reason == reason
        assert result.throughput == Fraction(1, 12)

    def test_shared_processor_declines_analytic(self, figure2_bounded):
        engine = ThroughputEngine(
            figure2_bounded, processor_of={"A": "t", "B": "t"}
        )
        tier, reason = engine.tier_for()
        assert tier == "vectorized"
        assert "time-share" in reason and "t" in reason

    def test_exclusive_processors_keep_analytic(self, figure2_bounded):
        engine = ThroughputEngine(
            figure2_bounded,
            processor_of={"A": "t0", "B": "t1", "C": "t2"},
        )
        assert engine.tier_for() == ("analytic", None)
        assert engine.analyze().throughput == Fraction(1, 6)

    def test_auto_concurrency_declines_analytic(self, figure2_bounded):
        engine = ThroughputEngine(figure2_bounded, auto_concurrency=None)
        tier, reason = engine.tier_for()
        assert tier == "vectorized"
        assert "auto-concurrency" in reason

    def test_unconnected_graph_declines_analytic(self, two_actor_pipeline):
        # No back-edge: the pipeline is not strongly connected.
        engine = ThroughputEngine(two_actor_pipeline)
        tier, reason = engine.tier_for()
        assert tier == "vectorized"
        assert "strongly connected" in reason

    def test_oversized_expansion_declines_analytic(self):
        big = MAX_HSDF_COPIES
        g = SDFGraph("wide")
        g.add_actor("A", execution_time=2)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B", production=big, consumption=1,
                   initial_tokens=0)
        g.add_edge("ba", "B", "A", production=1, consumption=big,
                   initial_tokens=big)
        engine = ThroughputEngine(g)
        tier, reason = engine.tier_for()
        assert tier == "vectorized"
        assert "HSDF expansion too large" in reason
        # The fallback still analyzes the graph exactly: credits return
        # one per B firing, so A waits out all 256 (2 + 256 cycles).
        assert engine.analyze().throughput == Fraction(1, big + 2)


# ----------------------------------------------------------------------
# forced modes
# ----------------------------------------------------------------------
class TestForcedModes:
    @pytest.mark.parametrize("mode", ("vectorized", "reference"))
    def test_forced_tier_is_recorded(self, figure2_bounded, mode):
        result = ThroughputEngine(figure2_bounded, mode=mode).analyze()
        assert result.tier == mode
        assert result.tier_reason == f"engine mode {mode!r} forced"
        assert result.throughput == Fraction(1, 6)

    def test_forced_analytic_on_eligible_graph(self, figure2_bounded):
        result = ThroughputEngine(
            figure2_bounded, mode="analytic"
        ).analyze()
        assert result.tier == "analytic"
        assert result.tier_reason == "engine mode 'analytic' forced"

    def test_forced_analytic_on_ineligible_graph_raises(
        self, figure2_bounded
    ):
        engine = ThroughputEngine(
            figure2_bounded,
            processor_of={"A": "t", "B": "t", "C": "t"},
            static_order={"t": ["A", "B", "B", "C"]},
            mode="analytic",
        )
        with pytest.raises(EngineUnsupportedError, match="static-order"):
            engine.analyze()

    def test_unknown_mode_rejected(self, figure2_bounded):
        with pytest.raises(ValueError, match="unknown throughput engine"):
            ThroughputEngine(figure2_bounded, mode="turbo")
        with pytest.raises(ValueError, match="turbo"):
            normalize_engine_mode("turbo")
        for mode in ENGINE_MODES:
            assert normalize_engine_mode(mode) == mode

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_every_mode_runs_deadlock_precheck(self, mode):
        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")  # no initial tokens: deadlock
        with pytest.raises(DeadlockError):
            ThroughputEngine(g, mode=mode).analyze()

    def test_analyze_throughput_engine_knob(self, figure2_bounded):
        auto = analyze_throughput(figure2_bounded)
        pinned = analyze_throughput(figure2_bounded, engine="reference")
        assert auto.tier == "vectorized"
        assert pinned.tier == "reference"
        assert auto.throughput == pinned.throughput
        with pytest.raises(ValueError, match="unknown throughput engine"):
            analyze_throughput(figure2_bounded, engine="warp")


# ----------------------------------------------------------------------
# result identity across tiers
# ----------------------------------------------------------------------
def test_tier_fields_do_not_affect_equality():
    a = ThroughputResult(
        throughput=Fraction(1, 6), period=6, iterations_per_period=1,
        transient_iterations=2, tier="vectorized", tier_reason="x",
    )
    b = ThroughputResult(
        throughput=Fraction(1, 6), period=6, iterations_per_period=1,
        transient_iterations=2, tier="reference", tier_reason=None,
    )
    assert a == b


def test_bad_reference_actor_rejected_by_every_tier(figure2_bounded):
    for mode in ("analytic", "vectorized", "reference"):
        engine = ThroughputEngine(
            figure2_bounded, reference_actor="ZZZ", mode=mode
        )
        with pytest.raises(SimulationError, match="reference actor"):
            engine.analyze()


# ----------------------------------------------------------------------
# warm reuse (in-place token mutation between calls)
# ----------------------------------------------------------------------
class TestWarmReuse:
    def test_retuned_tokens_reanalyzed_exactly(self, two_actor_pipeline):
        bounded_graph = bounded(two_actor_pipeline, {"p2q": 1})
        engine = ThroughputEngine(bounded_graph, mode="vectorized")
        assert engine.analyze().throughput == Fraction(1, 12)
        for capacity in (2, 4, 1, 3):
            retune_buffer_capacity(bounded_graph, "p2q", capacity)
            warm = engine.analyze()
            cold = analyze_throughput(
                bounded(two_actor_pipeline, {"p2q": capacity}),
                engine="vectorized",
            )
            assert warm == cold

    def test_analytic_rereads_mutated_tokens(self, two_actor_pipeline):
        bounded_graph = bounded(two_actor_pipeline, {"p2q": 1})
        engine = ThroughputEngine(bounded_graph, mode="analytic")
        assert engine.tier_for()[0] == "analytic"
        assert engine.analyze().throughput == Fraction(1, 12)
        retune_buffer_capacity(bounded_graph, "p2q", 4)
        assert engine.analyze().throughput == Fraction(1, 7)

    def test_latency_methods_match_one_shot_helpers(self, figure2_graph):
        g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})
        engine = ThroughputEngine(g)
        expected_first = first_iteration_latency(g)
        expected_pipe = source_to_sink_latency(g, "A", "C")
        # Twice each: the second call reuses the warm simulator.
        for _ in range(2):
            assert engine.first_iteration_latency() == expected_first
            assert engine.source_to_sink_latency("A", "C") == expected_pipe

    def test_latency_then_throughput_shares_the_stack(self, figure2_graph):
        g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})
        engine = ThroughputEngine(g, mode="vectorized")
        first = engine.first_iteration_latency()
        result = engine.analyze()
        assert result.throughput == Fraction(1, 6)
        assert engine.first_iteration_latency() == first


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
class TestCounters:
    def test_global_counters_increment(self, figure2_bounded):
        before = engine_counters().snapshot()
        ThroughputEngine(figure2_bounded).analyze()
        ThroughputEngine(figure2_bounded, mode="reference").analyze()
        after = engine_counters().snapshot()
        assert after["vectorized"] == before["vectorized"] + 1
        assert after["reference"] == before["reference"] + 1

    def test_scoped_collector_counts_only_inside(self, figure2_bounded):
        engine = ThroughputEngine(figure2_bounded, mode="vectorized")
        engine.analyze()  # outside: must not be collected
        with collect_engine_counters() as tiers:
            engine.analyze()
            engine.analyze()
        engine.analyze()  # after: must not be collected
        assert tiers.snapshot() == {
            "analytic": 0, "vectorized": 2, "reference": 0,
        }
        assert tiers.total() == 2

    def test_collectors_nest(self, figure2_bounded):
        engine = ThroughputEngine(figure2_bounded)
        with collect_engine_counters() as outer:
            engine.analyze()
            with collect_engine_counters() as inner:
                engine.analyze()
        assert outer.snapshot()["vectorized"] == 2
        assert inner.snapshot()["vectorized"] == 1

    def test_counters_are_plain_value_objects(self):
        counters = EngineCounters()
        counters.record("vectorized")
        counters.record("vectorized")
        counters.record("analytic")
        assert counters.total() == 3
        assert counters.snapshot() == {
            "analytic": 1, "vectorized": 2, "reference": 0,
        }
