"""Property-based tests for the mapping flow.

Random consistent applications (chains and fan-out trees with arbitrary
rates, WCETs and token sizes) are mapped onto random template platforms;
the flow's structural invariants must hold every time:

* every actor is bound to a tile whose PE type has an implementation;
* the static orders cover exactly one iteration per tile;
* the guarantee never exceeds the processing bound of the busiest tile;
* the guarantee is positive (the mapped system is live);
* re-running the flow is deterministic.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.mapping import map_application
from repro.sdf import SDFGraph, repetition_vector


@st.composite
def applications(draw):
    """Random chain-with-fanout applications, consistent by construction."""
    n = draw(st.integers(min_value=2, max_value=5))
    g = SDFGraph("prop_app")
    wcets = {}
    for i in range(n):
        wcet = draw(st.integers(min_value=50, max_value=800))
        g.add_actor(f"a{i}", execution_time=wcet)
        wcets[f"a{i}"] = wcet
    for i in range(n - 1):
        production = draw(st.integers(min_value=1, max_value=3))
        consumption = draw(st.integers(min_value=1, max_value=3))
        token_size = draw(st.integers(min_value=2, max_value=64))
        g.add_edge(
            f"e{i}", f"a{i}", f"a{i + 1}",
            production=production, consumption=consumption,
            token_size=token_size,
        )
    implementations = [
        ActorImplementation(
            actor=name, pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=wcet,
                memory=MemoryRequirements(2048, 1024),
            ),
        )
        for name, wcet in wcets.items()
    ]
    return ApplicationModel(graph=g, implementations=implementations)


@st.composite
def platforms(draw):
    tiles = draw(st.integers(min_value=1, max_value=4))
    interconnect = draw(st.sampled_from(["fsl", "noc"]))
    return architecture_from_template(tiles, interconnect)


@given(applications(), platforms())
@settings(max_examples=25, deadline=None)
def test_mapping_invariants(app, arch):
    result = map_application(app, arch, max_iterations=4000)
    mapping = result.mapping
    q = repetition_vector(app.graph)

    # Binding is total and well-typed.
    for actor in app.graph:
        tile = arch.tile(mapping.tile_of(actor.name))
        impl = mapping.implementations[actor.name]
        assert impl.pe_type == tile.pe_type

    # Static orders fire each actor exactly q times per cycle through.
    fired = {}
    for tile, order in mapping.static_orders.items():
        for actor in order:
            assert mapping.tile_of(actor) == tile
            fired[actor] = fired.get(actor, 0) + 1
    assert fired == {a.name: q[a.name] for a in app.graph}

    # The guarantee is positive and bounded by the busiest tile's work.
    assert result.guaranteed_throughput > 0
    loads = {}
    for actor in app.graph:
        tile = mapping.tile_of(actor.name)
        dispatch = arch.tile(tile).processor.context_switch_cycles
        impl = mapping.implementations[actor.name]
        loads[tile] = loads.get(tile, 0) + q[actor.name] * (
            impl.wcet + dispatch
        )
    processing_bound = Fraction(1, max(loads.values()))
    assert result.guaranteed_throughput <= processing_bound


@given(applications())
@settings(max_examples=10, deadline=None)
def test_mapping_is_deterministic(app):
    arch1 = architecture_from_template(3, "fsl")
    arch2 = architecture_from_template(3, "fsl")
    first = map_application(app, arch1, max_iterations=4000)
    second = map_application(app, arch2, max_iterations=4000)
    assert first.mapping.actor_binding == second.mapping.actor_binding
    assert first.mapping.static_orders == second.mapping.static_orders
    assert first.guaranteed_throughput == second.guaranteed_throughput


@given(applications())
@settings(max_examples=10, deadline=None)
def test_single_tile_guarantee_is_serial_execution(app):
    """On one tile the bound graph is fully serialized: the guarantee
    equals one iteration of total work (including dispatch)."""
    arch = architecture_from_template(1)
    result = map_application(app, arch, max_iterations=4000)
    q = repetition_vector(app.graph)
    dispatch = arch.tiles[0].processor.context_switch_cycles
    serial_work = sum(
        q[a.name] * (result.mapping.implementations[a.name].wcet + dispatch)
        for a in app.graph
    )
    assert result.guaranteed_throughput == Fraction(1, serial_work)