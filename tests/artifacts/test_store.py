"""Tests for the on-disk artifact store and the persistent DSE cache."""

import threading

import pytest

from repro.artifacts import (
    ArtifactError,
    ArtifactStore,
    PersistentEvaluationCache,
    canonical_json,
    to_payload,
)
from repro.flow import DesignSpace, Evaluator, ParallelExplorer
from tests.artifacts.test_roundtrip import make_app


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestArtifactStore:
    def test_put_get_roundtrip(self, store):
        payload = to_payload(make_app())
        path = store.put("application", "k1", payload)
        assert path.exists()
        assert store.get("application", "k1") == payload
        assert store.has("application", "k1")
        assert store.get("application", "absent") is None

    def test_files_are_canonical_bytes(self, store):
        payload = to_payload(make_app())
        path = store.put("application", "k1", payload)
        assert path.read_text(encoding="utf-8") == \
            canonical_json(payload) + "\n"

    def test_kind_mismatch_rejected(self, store):
        payload = to_payload(make_app())
        with pytest.raises(ArtifactError, match="expected artifact kind"):
            store.put("architecture", "k1", payload)
        store.put("application", "k1", payload)
        # path traversal is rejected before any filesystem access
        with pytest.raises(ArtifactError, match="unsafe"):
            store.get("architecture", "../application/k1")

    def test_unsafe_keys_rejected(self, store):
        payload = to_payload(make_app())
        for bad in ("", "a/b", "..", ".hidden", "a b"):
            with pytest.raises(ArtifactError, match="unsafe"):
                store.put("application", bad, payload)

    def test_corrupt_artifact_reads_as_miss(self, store):
        """Truncated/unparseable documents are cache misses, not errors:
        the caller recomputes and atomically rewrites the entry."""
        payload = to_payload(make_app())
        path = store.put("application", "k1", payload)
        full_text = path.read_text(encoding="utf-8")
        for corrupt in (
            "{not json",
            full_text[: len(full_text) // 2],  # torn write
            "",
            "[1, 2, 3]",                       # no envelope
            '{"kind": "application"}',         # no schema_version
        ):
            path.write_text(corrupt, encoding="utf-8")
            assert store.get("application", "k1") is None
            assert store.get_text("application", "k1") is None
        # a rewrite heals the entry in place
        assert store.put("application", "k1", payload) == path
        assert store.get("application", "k1") == payload

    def test_newer_schema_and_kind_mismatch_still_raise(self, store):
        """Only *corruption* downgrades to a miss: a healthy document
        this build is too old for, or one filed under the wrong kind,
        is a real error."""
        payload = to_payload(make_app())
        path = store.put("application", "k1", payload)
        import json as json_module

        newer = dict(payload, schema_version=99)
        path.write_text(json_module.dumps(newer), encoding="utf-8")
        with pytest.raises(ArtifactError, match="schema_version 99"):
            store.get("application", "k1")
        path.write_text(
            json_module.dumps(dict(payload, kind="architecture")),
            encoding="utf-8",
        )
        with pytest.raises(ArtifactError, match="expected artifact kind"):
            store.get("application", "k1")

    def test_session_recomputes_over_corrupt_artifact(self, tmp_path):
        """End to end: a FlowSession whose workspace holds a truncated
        stage artifact recomputes that stage and rewrites the file."""
        from repro.flow import FlowSession
        from repro.flow.spec import FlowSpec

        spec = FlowSpec.from_dict({
            "name": "heal",
            "app": {"sequence": "gradient", "frames": 1},
            "architecture": {"tiles": 2},
            "mapping": {"fixed": {"VLD": "tile0"}},
        })
        first = FlowSession(tmp_path, spec).run()
        mapping_stage = next(
            s for s in first.stages if s.stage == "mapping:gradient"
        )
        target = tmp_path / mapping_stage.path
        text = target.read_text(encoding="utf-8")
        target.write_text(text[: len(text) // 3], encoding="utf-8")
        second = FlowSession(tmp_path, spec).run()
        assert second.computed_stages == ("mapping:gradient",)
        assert target.read_text(encoding="utf-8") == text
        assert second.guarantees() == first.guarantees()

    def test_enumeration(self, store):
        assert store.kinds() == ()
        store.put("application", "b", to_payload(make_app()))
        store.put("application", "a", to_payload(make_app()))
        assert store.kinds() == ("application",)
        assert store.keys("application") == ("a", "b")
        assert store.keys("nothing") == ()
        assert len(store) == 2

    def test_concurrent_writers_of_same_key_are_safe(self, store):
        payload = to_payload(make_app())
        errors = []

        def write():
            try:
                for _ in range(20):
                    store.put("application", "hot", payload)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=write) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.get("application", "hot") == payload
        # no temp files left behind
        leftovers = [
            p for p in (store.root / "application").iterdir()
            if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_object_helpers(self, store):
        app = make_app()
        store.put_object("k1", app)
        assert store.get_object("application", "k1") == app
        assert store.get_object("application", "nope") is None


class TestPersistentEvaluationCache:
    def test_outcomes_survive_process_boundaries(self, tmp_path):
        app = make_app()
        space = DesignSpace(tile_counts=(1, 2), interconnects=("fsl",))

        cold = Evaluator(
            app,
            cache=PersistentEvaluationCache(ArtifactStore(tmp_path)),
        )
        first = ParallelExplorer(cold).explore(space)
        assert cold.evaluations == len(space)

        # a "new process": fresh store and cache objects over the same dir
        warm = Evaluator(
            app,
            cache=PersistentEvaluationCache(ArtifactStore(tmp_path)),
        )
        second = ParallelExplorer(warm).explore(space)
        assert warm.evaluations == 0
        assert warm.cache.stats.hit_rate() == 1.0
        assert second.as_table() == first.as_table()

    def test_disk_hits_fill_the_memory_tier(self, tmp_path):
        app = make_app()
        store = ArtifactStore(tmp_path)
        writer = PersistentEvaluationCache(store)
        evaluator = Evaluator(app, cache=writer)
        candidate = next(iter(
            DesignSpace(tile_counts=(2,), interconnects=("fsl",))
        ))
        outcome = evaluator.evaluate(candidate)

        reader = PersistentEvaluationCache(ArtifactStore(tmp_path))
        key = store.keys("evaluation-outcome")[0]
        assert reader.get(key) == outcome  # from disk
        # second lookup is a pure memory hit even if the file vanishes
        store.path_for("evaluation-outcome", key).unlink()
        assert reader.get(key) == outcome
