"""The MJPEG encoder.

Produces the bitstreams the case study decodes -- the stand-in for the
paper's input files.  The container is a compact custom format (documented
below) whose entropy-coded payload uses real JPEG mechanics: level shift,
8x8 DCT, quality-scaled quantization, zig-zag scan, DC prediction and
(run, size) Huffman coding with the Annex K tables.  The decoder therefore
exercises a genuine variable-length-decode workload.

Container layout (all integers big-endian)::

    "MJPG" | version u8 | width u16 | height u16 | h u8 | v u8
          | quality u8 | color u8 | n_frames u16
    then per frame: entropy-coded MCUs, byte-aligned at the frame end,
    DC predictors reset at each frame start.

MCU structure: ``h*v`` luminance blocks (raster order), then one Cb and one
Cr block when ``color`` (chroma subsampled ``h x v`` -> one block per MCU).
``h*v + 2 <= 10`` is enforced -- the "up to 10 blocks" of Section 6.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import BitstreamError
from repro.mjpeg.bitstream import BitWriter
from repro.mjpeg.colors import rgb_to_ycbcr
from repro.mjpeg.dct import forward_dct, quantize
from repro.mjpeg.tables import (
    AC_TABLE,
    BASE_CHROMA_QUANT,
    BASE_LUMA_QUANT,
    DC_TABLE,
    EOB,
    ZIGZAG,
    ZRL,
    encode_magnitude,
    magnitude_category,
    scaled_quant_table,
)

MAGIC = b"MJPG"
VERSION = 1
#: JPEG's (and the paper's) ceiling on blocks per MCU.
MAX_BLOCKS_PER_MCU = 10


@dataclass(frozen=True)
class EncodedSequence:
    """An encoded bitstream plus the header information it carries."""

    data: bytes
    width: int
    height: int
    h: int
    v: int
    quality: int
    color: bool
    n_frames: int

    @property
    def mcu_width(self) -> int:
        return 8 * self.h

    @property
    def mcu_height(self) -> int:
        return 8 * self.v

    @property
    def mcus_x(self) -> int:
        return self.width // self.mcu_width

    @property
    def mcus_y(self) -> int:
        return self.height // self.mcu_height

    @property
    def mcus_per_frame(self) -> int:
        return self.mcus_x * self.mcus_y

    @property
    def blocks_per_mcu(self) -> int:
        return self.h * self.v + (2 if self.color else 0)

    @property
    def total_mcus(self) -> int:
        return self.mcus_per_frame * self.n_frames


def _encode_block(
    writer: BitWriter,
    levels_zigzag: np.ndarray,
    dc_predictor: int,
) -> int:
    """Entropy-encode one zig-zag block; returns the new DC predictor."""
    dc = int(levels_zigzag[0])
    diff = dc - dc_predictor
    category = magnitude_category(diff)
    code, length = DC_TABLE.encode(category)
    writer.write(code, length)
    if category:
        writer.write(encode_magnitude(diff, category), category)

    run = 0
    for index in range(1, 64):
        level = int(levels_zigzag[index])
        if level == 0:
            run += 1
            continue
        while run > 15:
            code, length = AC_TABLE.encode(ZRL)
            writer.write(code, length)
            run -= 16
        category = magnitude_category(level)
        if category > 10:
            raise BitstreamError(
                f"AC level {level} too large for the AC table"
            )
        code, length = AC_TABLE.encode((run << 4) | category)
        writer.write(code, length)
        writer.write(encode_magnitude(level, category), category)
        run = 0
    if run:
        code, length = AC_TABLE.encode(EOB)
        writer.write(code, length)
    return dc


def _component_blocks(
    plane: np.ndarray, x0: int, y0: int, h: int, v: int
) -> List[np.ndarray]:
    """The h*v 8x8 blocks of one MCU of a component plane."""
    blocks = []
    for by in range(v):
        for bx in range(h):
            y = y0 + 8 * by
            x = x0 + 8 * bx
            blocks.append(plane[y:y + 8, x:x + 8])
    return blocks


def _subsample(plane: np.ndarray, h: int, v: int) -> np.ndarray:
    """Box-average chroma subsampling by (v, h)."""
    height, width = plane.shape
    reshaped = plane.reshape(height // v, v, width // h, h)
    return reshaped.mean(axis=(1, 3))


def encode_sequence(
    frames: Sequence[np.ndarray],
    quality: int = 75,
    h: int = 2,
    v: int = 2,
    color: bool = True,
) -> EncodedSequence:
    """Encode RGB frames (HxWx3 uint8) into an MJPEG bitstream.

    All frames must share one shape; width/height must be multiples of the
    MCU size (8h x 8v).  ``h * v + 2`` blocks per MCU must not exceed 10.
    """
    if not frames:
        raise BitstreamError("need at least one frame")
    blocks_per_mcu = h * v + (2 if color else 0)
    if blocks_per_mcu > MAX_BLOCKS_PER_MCU:
        raise BitstreamError(
            f"{blocks_per_mcu} blocks per MCU exceeds the limit of "
            f"{MAX_BLOCKS_PER_MCU}"
        )
    if h < 1 or v < 1:
        raise BitstreamError("sampling factors must be >= 1")

    height, width = frames[0].shape[:2]
    if width % (8 * h) or height % (8 * v):
        raise BitstreamError(
            f"frame {width}x{height} is not a multiple of the "
            f"{8 * h}x{8 * v} MCU size"
        )

    luma_table = scaled_quant_table(BASE_LUMA_QUANT, quality)
    chroma_table = scaled_quant_table(BASE_CHROMA_QUANT, quality)
    zigzag = np.array(ZIGZAG)

    writer = BitWriter()
    header = MAGIC + struct.pack(
        ">BHHBBBBH", VERSION, width, height, h, v, quality,
        1 if color else 0, len(frames),
    )

    for frame in frames:
        if frame.shape[:2] != (height, width):
            raise BitstreamError("all frames must share one shape")
        ycbcr = rgb_to_ycbcr(frame)
        y_plane = ycbcr[..., 0].astype(np.float64) - 128.0
        if color:
            cb_plane = _subsample(
                ycbcr[..., 1].astype(np.float64), h, v
            ) - 128.0
            cr_plane = _subsample(
                ycbcr[..., 2].astype(np.float64), h, v
            ) - 128.0

        predictors = {"y": 0, "cb": 0, "cr": 0}
        for mcu_y in range(height // (8 * v)):
            for mcu_x in range(width // (8 * h)):
                for block in _component_blocks(
                    y_plane, mcu_x * 8 * h, mcu_y * 8 * v, h, v
                ):
                    levels = quantize(forward_dct(block), luma_table)
                    predictors["y"] = _encode_block(
                        writer, levels.ravel()[zigzag], predictors["y"]
                    )
                if color:
                    for name, plane in (("cb", cb_plane), ("cr", cr_plane)):
                        block = plane[
                            mcu_y * 8:mcu_y * 8 + 8,
                            mcu_x * 8:mcu_x * 8 + 8,
                        ]
                        levels = quantize(
                            forward_dct(block), chroma_table
                        )
                        predictors[name] = _encode_block(
                            writer, levels.ravel()[zigzag], predictors[name]
                        )
        writer.align()

    return EncodedSequence(
        data=header + writer.getvalue(),
        width=width,
        height=height,
        h=h,
        v=v,
        quality=quality,
        color=color,
        n_frames=len(frames),
    )


def parse_header(data: bytes) -> EncodedSequence:
    """Parse the container header; payload stays in ``data``."""
    if data[:4] != MAGIC:
        raise BitstreamError("not an MJPG stream (bad magic)")
    version, width, height, h, v, quality, color, n_frames = struct.unpack(
        ">BHHBBBBH", data[4:4 + 11]
    )
    if version != VERSION:
        raise BitstreamError(f"unsupported version {version}")
    return EncodedSequence(
        data=data,
        width=width,
        height=height,
        h=h,
        v=v,
        quality=quality,
        color=bool(color),
        n_frames=n_frames,
    )


HEADER_BYTES = 4 + 11
