"""Operating points: codecs, cost model, eligibility."""

from fractions import Fraction

from repro.artifacts import canonical_json, from_payload, to_payload
from repro.comm.params import WORD_BITS
from repro.runtime import (
    OperatingPoint,
    OperatingPointLibrary,
    transfer_cycles,
)


class TestTransferCycles:
    def test_fsl_moves_one_word_per_cycle(self):
        # 100 bytes = 25 words of 32 bits
        assert transfer_cycles(100) == 25

    def test_word_granularity_rounds_up(self):
        assert transfer_cycles(1) == 1
        assert transfer_cycles(5) == 2

    def test_sdm_connection_serializes_words_over_wires(self):
        assert transfer_cycles(100, wires=4) == 25 * (WORD_BITS // 4)
        # a full-width connection matches FSL speed
        assert transfer_cycles(100, wires=WORD_BITS) == 25

    def test_no_state_no_downtime(self):
        assert transfer_cycles(0) == 0
        assert transfer_cycles(0, wires=4) == 0


class TestCodecs:
    def test_library_payload_round_trips_byte_identically(
        self, fsl_builds
    ):
        for _, build in fsl_builds:
            payload = to_payload(build.library)
            encoded = canonical_json(payload)
            clone = from_payload(payload)
            assert canonical_json(to_payload(clone)) == encoded

    def test_points_keep_the_full_mapping_result(self, fsl_builds):
        for _, build in fsl_builds:
            for point in build.library.points:
                assert point.result is not None
                assert point.result.guaranteed_throughput == \
                    point.throughput
            clone = from_payload(to_payload(build.library))
            for point in clone.points:
                assert point.result is not None

    def test_footprints_cover_every_used_tile(self, fsl_builds):
        for _, build in fsl_builds:
            for point in build.library.points:
                assert set(point.tile_memory) == set(point.tiles)
                for channel in point.channels:
                    assert channel.src in point.tiles
                    assert channel.dst in point.tiles


class TestSelectionOrder:
    def test_library_is_kept_cheapest_first(self, fsl_builds):
        for _, build in fsl_builds:
            keys = [p.cost_key() for p in build.library.points]
            assert keys == sorted(keys)

    def test_eligible_filters_on_the_constraint(self):
        fast = OperatingPoint(
            label="fast", tiles=("tile0",), interconnect="fsl",
            throughput=Fraction(1, 10), constraint_met=True,
            area_slices=100,
        )
        slow = OperatingPoint(
            label="slow", tiles=("tile0",), interconnect="fsl",
            throughput=Fraction(1, 100), constraint_met=False,
            area_slices=50,
        )
        unconstrained = OperatingPointLibrary(
            app_name="a", app_fingerprint="f", points=[slow, fast]
        )
        assert unconstrained.eligible() == [slow, fast]
        constrained = OperatingPointLibrary(
            app_name="a", app_fingerprint="f",
            constraint=Fraction(1, 20), points=[slow, fast],
        )
        assert constrained.eligible() == [fast]
