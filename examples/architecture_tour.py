#!/usr/bin/env python3
"""A tour of the MAMPS architecture template (Fig. 3).

Builds a platform with all four tile variants of the paper's Fig. 3 --
a master tile with peripherals, a plain slave tile, a CA-equipped tile and
a hardware-IP tile -- on an SDM mesh NoC, then prints the platform
description, per-component area estimates and the generated netlist shape.

Run:  python examples/architecture_tour.py
"""

from repro.arch import (
    ArchitectureModel,
    SDMNoC,
    interconnect_area,
    ip_tile,
    master_tile,
    platform_area,
    slave_tile,
    tile_area,
)
from repro.arch.area import noc_router_slices
from repro.arch.interconnect import Connection


def main() -> None:
    tiles = [
        master_tile("tile_master"),          # Fig. 3, Tile 1
        slave_tile("tile_slave"),            # Fig. 3, Tile 2
        slave_tile("tile_ca", with_ca=True),  # Fig. 3, Tile 3
        ip_tile("tile_ip"),                  # Fig. 3, Tile 4
    ]
    noc = SDMNoC([t.name for t in tiles], wires_per_link=32)
    arch = ArchitectureModel(name="fig3_tour", tiles=tiles, interconnect=noc)
    arch.validate()

    print("=== platform ===")
    print(arch.describe())
    print()

    print("=== per-tile area ===")
    for tile in tiles:
        area = tile_area(tile)
        print(
            f"  {tile.name:>12}: {area.slices:>5} slices, "
            f"{area.brams:>3} BRAMs"
        )
    print()

    print("=== NoC ===")
    print(f"  mesh: {noc.columns}x{noc.rows}, {noc.link_count()} links")
    print(
        f"  router: {noc_router_slices(flow_control=False)} slices "
        f"without flow control, {noc_router_slices(flow_control=True)} "
        "with (the ~12% the paper reports)"
    )
    connection = noc.allocate(
        Connection("demo", "tile_master", "tile_ip"), wires=16
    )
    print(
        f"  demo connection master->ip: {connection.channel_latency} cycles "
        f"latency, {connection.injection_cycles_per_word} cycle(s)/word "
        f"at 16 wires"
    )
    print(f"  interconnect area: {interconnect_area(noc).slices} slices")
    print()

    total = platform_area(arch)
    print(
        f"=== total: {total.slices} slices, {total.brams} BRAMs "
        "(Virtex-6 xc6vlx240t has 37,680 slices) ==="
    )


if __name__ == "__main__":
    main()
