"""Seeded open-loop traffic plans for load-testing the flow service.

A load test is fully determined by ``(family, unique, requests, rps,
seed, replicas)``: the request *pool* is a batch of distinct scenario
FlowSpec documents from :func:`repro.scenarios.generate_scenarios`, the
*sequence* assigns one pool entry to each request from a seeded stream
(duplicate-heavy on purpose, so coalescing and artifact reuse are
exercised), and the *arrival offsets* form an open-loop Poisson process
at the target rate.  Open-loop means arrivals never wait for responses:
a slow server faces a growing backlog instead of a politely throttled
client, which is what makes the measured latency honest.

The plan is plain data (:class:`PlannedRequest` rows), so the harness
in :mod:`repro.loadgen.harness` only has to fire it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError
from repro.scenarios import generate_scenarios, scenario_flow_spec


class LoadgenError(ReproError):
    """Raised for invalid traffic or harness configuration."""


@dataclass(frozen=True)
class PlannedRequest:
    """One request of the plan: when to fire, at whom, with what."""

    index: int
    #: Seconds after test start at which the request is POSTed.
    offset: float
    #: Round-robin target replica (index into the harness URL list).
    replica_index: int
    #: Index into the unique-document pool (for per-spec accounting).
    pool_index: int
    #: The FlowSpec document to POST.
    document: Dict[str, Any]

    @property
    def spec_name(self) -> str:
        return str(self.document.get("name", ""))


def request_pool(
    family: str = "mixed",
    unique: int = 4,
    seed: int = 7,
    actors: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """``unique`` distinct FlowSpec documents from one scenario family.

    Documents come from the seeded scenario generator, so the same
    ``(family, unique, seed, actors)`` always produces byte-identical
    request bodies -- a load test is replayable by construction.
    """
    if unique < 1:
        raise LoadgenError(f"unique must be >= 1, got {unique}")
    specs = generate_scenarios(family, unique, seed, actors=actors)
    return [scenario_flow_spec(spec).to_document() for spec in specs]


def request_sequence(pool_size: int, requests: int, seed: int) -> List[int]:
    """Which pool entry each request posts (seeded, duplicate-heavy).

    Uniform seeded draws rather than a round-robin walk: bursts of the
    same document occur naturally, which is exactly the traffic that
    triggers in-flight coalescing on the server.
    """
    if pool_size < 1:
        raise LoadgenError(f"pool_size must be >= 1, got {pool_size}")
    if requests < 1:
        raise LoadgenError(f"requests must be >= 1, got {requests}")
    rng = random.Random(f"loadgen-sequence:{seed}")
    return [rng.randrange(pool_size) for _ in range(requests)]


def arrival_offsets(requests: int, rps: float, seed: int) -> List[float]:
    """Open-loop Poisson arrival times, in seconds since test start.

    Inter-arrival gaps are exponential with mean ``1/rps``; the offsets
    are their running sum.  The schedule is independent of how fast the
    server answers -- the defining property of an open-loop generator.
    """
    if requests < 1:
        raise LoadgenError(f"requests must be >= 1, got {requests}")
    if rps <= 0:
        raise LoadgenError(f"rps must be > 0, got {rps}")
    rng = random.Random(f"loadgen-arrivals:{seed}")
    offsets: List[float] = []
    clock = 0.0
    for _ in range(requests):
        clock += rng.expovariate(rps)
        offsets.append(clock)
    return offsets


def build_traffic(
    family: str = "mixed",
    unique: int = 4,
    requests: int = 40,
    rps: float = 20.0,
    seed: int = 7,
    replicas: int = 1,
    actors: Optional[int] = None,
) -> List[PlannedRequest]:
    """The full seeded plan: pool + sequence + arrivals + fan-out.

    Requests round-robin across ``replicas`` targets in arrival order,
    so replicas sharing a workspace each see a fair share of every
    document -- including duplicates of documents first computed by a
    sibling, which is what exercises cross-replica artifact reuse.
    """
    if replicas < 1:
        raise LoadgenError(f"replicas must be >= 1, got {replicas}")
    pool = request_pool(family, unique, seed, actors=actors)
    sequence = request_sequence(len(pool), requests, seed)
    offsets = arrival_offsets(requests, rps, seed)
    return [
        PlannedRequest(
            index=index,
            offset=offsets[index],
            replica_index=index % replicas,
            pool_index=sequence[index],
            document=pool[sequence[index]],
        )
        for index in range(requests)
    ]
