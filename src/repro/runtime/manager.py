"""The run-time platform manager: admission, departure, migration.

Today the service answers "map this spec"; a production MPSoC manager
answers "application C just arrived on a platform already running A and
B" (ROADMAP item 3).  :class:`PlatformManager` is that layer -- a
long-lived, lock-guarded model of ONE architecture that:

* **admits** an application by scanning its operating-point library
  (cheapest point first) for a point that *relocates* onto the free
  tiles -- pure residual-fit selection, zero throughput analyses -- and
  falls back to one incremental spiral mapping over the residual
  platform (Benhaoua et al., PAPERS.md) when no stored point fits;
* **departs** an application, releasing exactly what admission claimed,
  optionally migrating the survivors when the freed resources open a
  better stored placement -- charged with the state-transfer cost model
  of Sebai et al. (PAPERS.md): moving ``state_bytes`` over one link
  costs downtime, and a move only happens when the throughput gained
  over the policy horizon exceeds the iterations lost while down;
* **journals** every transition (:mod:`repro.runtime.journal`) so a
  restarted manager replays to byte-identical state without re-deciding
  anything.

Admission is all-or-nothing against *residual* resources only, so a
rejection (:class:`~repro.exceptions.AdmissionError`, HTTP 409 at the
service surface) can never degrade a running application.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.arch.area import platform_area
from repro.artifacts.schema import (
    canonical_json,
    decode_fraction,
    encode_fraction,
    from_payload,
    to_payload,
)
from repro.artifacts.store import ArtifactStore
from repro.exceptions import (
    AdmissionError,
    MappingError,
    PlatformError,
    RoutingError,
    UnknownAppError,
)
from repro.flow.fingerprint import application_fingerprint
from repro.flow.spec import ArchSpec, FlowSpec
from repro.mapping.flow import MappingEffort, map_application
from repro.runtime.journal import PlatformJournal
from repro.runtime.library import (
    _prefix_architecture,
    effort_token,
    library_key,
)
from repro.runtime.points import (
    LIBRARY_KIND,
    OperatingPoint,
    OperatingPointLibrary,
    operating_point_from_result,
    transfer_cycles,
)
from repro.runtime.residual import (
    ResidualPlatform,
    ResourceClaim,
    find_placement,
)


@dataclass(frozen=True)
class MigrationPolicy:
    """When is moving a running application worth its downtime?

    A migration transfers the application's ``state_bytes`` over one
    connection (:func:`~repro.runtime.points.transfer_cycles`); during
    those cycles the application produces nothing.  The move pays off
    when the extra iterations gained over ``horizon_cycles`` exceed the
    iterations lost while down::

        (new - old) * horizon  >  old * downtime

    evaluated in exact :class:`~fractions.Fraction` arithmetic.
    """

    horizon_cycles: int = 100_000_000
    enabled: bool = True

    def worthwhile(
        self, old: Fraction, new: Fraction, downtime_cycles: int
    ) -> bool:
        if not self.enabled or new <= old:
            return False
        return (new - old) * self.horizon_cycles > old * downtime_cycles


@dataclass
class PlacedApp:
    """One admitted application and everything needed to undo it."""

    app_id: str
    app_name: str
    source: str  # "library" | "spiral"
    point: OperatingPoint
    #: Canonical point tile -> real managed tile.
    placement: Dict[str, str]
    claim: ResourceClaim
    guarantee: Fraction
    constraint: Optional[Fraction] = None
    library_key: Optional[str] = None
    #: Managed tiles that pinned actors tie the placement to.
    pinned: Tuple[str, ...] = ()


class PlatformManager:
    """Long-lived stateful manager of one architecture.

    Thread-safe (one re-entrant lock around every transition); intended
    to be owned by the service scheduler, which serializes heavy work
    through its worker pool anyway.  With a ``store``, every transition
    is journaled and :meth:`open` replays a restarted manager to the
    identical state.
    """

    def __init__(
        self,
        arch_spec: ArchSpec,
        store: Optional[ArtifactStore] = None,
        policy: Optional[MigrationPolicy] = None,
        _configure: bool = True,
    ) -> None:
        self.arch_spec = arch_spec
        self.store = store
        self.policy = policy if policy is not None else MigrationPolicy()
        self.arch = _prefix_architecture(arch_spec, arch_spec.tiles)
        self.residual = ResidualPlatform(self.arch)
        self._apps: Dict[str, PlacedApp] = {}
        self._libraries: Dict[str, OperatingPointLibrary] = {}
        self._lock = threading.RLock()
        self._next = 1
        self.counters: Dict[str, int] = {
            "admissions": 0,
            "rejections": 0,
            "departures": 0,
            "migrations": 0,
            "analyses": 0,
        }
        self.journal = (
            PlatformJournal(store) if store is not None else None
        )
        if self.journal is not None and _configure:
            self.journal.append(
                "configure",
                {"architecture": dataclasses.asdict(arch_spec)},
            )

    # ------------------------------------------------------------------
    # construction from a journal
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        store: Optional[ArtifactStore] = None,
        arch_spec: Optional[ArchSpec] = None,
        policy: Optional[MigrationPolicy] = None,
    ) -> Optional["PlatformManager"]:
        """Resume the workspace's platform, or configure a fresh one.

        A non-empty journal wins: the stored configuration is replayed
        (``arch_spec``, if also given, must match it).  An empty journal
        plus an ``arch_spec`` configures a fresh platform.  Neither ->
        ``None`` (nothing to manage yet).
        """
        journal = PlatformJournal(store) if store is not None else None
        if journal is None or len(journal) == 0:
            if arch_spec is None:
                return None
            return cls(arch_spec, store=store, policy=policy)

        events = journal.events()
        first = events[0]
        if first["event"] != "configure":
            raise PlatformError(
                "platform journal does not start with a configure event; "
                f"found {first['event']!r}"
            )
        stored = ArchSpec(**first["data"]["architecture"])
        if arch_spec is not None and arch_spec != stored:
            raise AdmissionError(
                "workspace already manages a different architecture "
                f"({stored.tiles} tile(s) / {stored.interconnect}); one "
                "platform per workspace"
            )
        manager = cls(
            stored, store=store, policy=policy, _configure=False
        )
        manager._apply(events[1:])
        return manager

    def _apply(self, events: List[Dict[str, Any]]) -> None:
        """Replay journaled decisions; never re-decides anything."""
        for payload in events:
            event, data = payload["event"], payload["data"]
            if event == "admit":
                point = from_payload(data["point"])
                placement = dict(data["placement"])
                claim = self.residual.claim_for(point, placement)
                self.residual.claim(claim)
                app = PlacedApp(
                    app_id=data["app_id"],
                    app_name=data["app_name"],
                    source=data["source"],
                    point=point,
                    placement=placement,
                    claim=claim,
                    guarantee=decode_fraction(data["guarantee"]),
                    constraint=decode_fraction(data["constraint"]),
                    library_key=data["library_key"],
                    pinned=tuple(data["pinned"]),
                )
                self._apps[app.app_id] = app
                self._next = max(
                    self._next, _id_number(app.app_id) + 1
                )
                self.counters["admissions"] += 1
            elif event == "depart":
                app = self._apps.pop(data["app_id"])
                self.residual.release(app.claim)
                self.counters["departures"] += 1
            elif event == "migrate":
                app = self._apps[data["app_id"]]
                self.residual.release(app.claim)
                point = from_payload(data["point"])
                placement = dict(data["placement"])
                claim = self.residual.claim_for(point, placement)
                self.residual.claim(claim)
                app.point = point
                app.placement = placement
                app.claim = claim
                app.guarantee = decode_fraction(data["guarantee"])
                app.source = "library"
                self.counters["migrations"] += 1
            else:
                raise PlatformError(
                    f"unknown platform journal event {event!r}"
                )

    # ------------------------------------------------------------------
    # libraries
    # ------------------------------------------------------------------
    def register_library(
        self, key: str, library: OperatingPointLibrary
    ) -> None:
        """Attach an in-memory library (tests; store-less managers)."""
        with self._lock:
            self._libraries[key] = library

    def _library_for(self, key: str) -> Optional[OperatingPointLibrary]:
        cached = self._libraries.get(key)
        if cached is not None:
            return cached
        if self.store is not None:
            payload = self.store.get(LIBRARY_KIND, key)
            if payload is not None:
                library = from_payload(payload)
                self._libraries[key] = library
                return library
        return None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(
        self,
        spec: FlowSpec,
        library: Optional[OperatingPointLibrary] = None,
    ) -> Dict[str, Any]:
        """Admit the spec's application onto the residual platform.

        Selection order: cheapest eligible library point that relocates
        onto the free tiles (zero analyses), then one spiral mapping
        over the residual sub-platform.  Raises
        :class:`~repro.exceptions.AdmissionError` when neither fits --
        the running applications are untouched either way.
        """
        if spec.multi:
            raise AdmissionError(
                f"spec {spec.name!r} declares {len(spec.apps)} "
                "applications; admission is per application"
            )
        if spec.architecture != self.arch_spec:
            raise AdmissionError(
                f"spec {spec.name!r} targets a "
                f"{spec.architecture.tiles}-tile "
                f"{spec.architecture.interconnect} platform; this "
                f"manager runs {self.arch_spec.tiles} tile(s) / "
                f"{self.arch_spec.interconnect}"
            )
        with self._lock:
            try:
                return self._admit_locked(spec, library)
            except AdmissionError:
                self.counters["rejections"] += 1
                raise

    def _admit_locked(
        self,
        spec: FlowSpec,
        library: Optional[OperatingPointLibrary],
    ) -> Dict[str, Any]:
        app_spec = spec.app
        app = spec.build_app(app_spec)
        constraint = spec.constraint_for(app_spec)
        fixed = spec.fixed_for(app_spec)
        pinned = tuple(sorted(set(fixed.values()))) if fixed else ()
        effort = MappingEffort.of(spec.effort)
        key = library_key(
            application_fingerprint(app),
            dataclasses.asdict(spec.architecture),
            constraint,
            effort_token(effort),
            spec.strategies.cache_token(),
            fixed=fixed,
        )
        if library is None:
            library = self._library_for(key)

        analyses = 0
        placed: Optional[Tuple[OperatingPoint, Dict[str, str],
                               ResourceClaim, str]] = None
        if library is not None:
            for point in library.eligible():
                found = find_placement(point, self.residual, pinned)
                if found is not None:
                    placed = (point, found[0], found[1], "library")
                    break
        if placed is None:
            point, placement, claim = self._spiral_fallback(
                spec, app, constraint, fixed, effort
            )
            analyses = 1
            self.counters["analyses"] += 1
            placed = (point, placement, claim, "spiral")

        point, placement, claim, source = placed
        self.residual.claim(claim)
        app_id = f"app-{self._next:06d}"
        self._next += 1
        record = PlacedApp(
            app_id=app_id,
            app_name=app_spec.effective_name or app.name,
            source=source,
            point=point,
            placement=placement,
            claim=claim,
            guarantee=point.throughput,
            constraint=constraint,
            library_key=key,
            pinned=pinned,
        )
        self._apps[app_id] = record
        self.counters["admissions"] += 1
        if self.journal is not None:
            self.journal.append(
                "admit",
                {
                    "app_id": app_id,
                    "app_name": record.app_name,
                    "source": source,
                    "point": to_payload(point),
                    "placement": dict(sorted(placement.items())),
                    "guarantee": encode_fraction(record.guarantee),
                    "constraint": encode_fraction(constraint),
                    "library_key": key,
                    "pinned": list(pinned),
                },
            )
        return {
            "app_id": app_id,
            "app": record.app_name,
            "source": source,
            "point": point.label,
            "placement": dict(sorted(placement.items())),
            "tiles": list(claim.tiles),
            "guarantee": encode_fraction(record.guarantee),
            "analyses": analyses,
        }

    def _spiral_fallback(
        self,
        spec: FlowSpec,
        app: Any,
        constraint: Optional[Fraction],
        fixed: Optional[Dict[str, str]],
        effort: MappingEffort,
    ) -> Tuple[OperatingPoint, Dict[str, str], ResourceClaim]:
        """One incremental spiral mapping over the residual platform."""
        residual_arch = self.residual.residual_architecture()
        if residual_arch is None:
            raise AdmissionError(
                "no free tiles left on the platform"
            )
        strategies = dataclasses.replace(
            spec.strategies, binding="spiral"
        )
        try:
            result = map_application(
                app,
                residual_arch,
                constraint=constraint,
                fixed=fixed,
                effort=effort,
                pipeline=strategies.build_pipeline(),
            )
        except (MappingError, RoutingError) as error:
            raise AdmissionError(
                f"application {app.name!r} does not fit the residual "
                f"platform ({len(self.residual.free_tiles())} free "
                f"tile(s)): {error}"
            ) from None
        if constraint is not None and not result.constraint_met:
            raise AdmissionError(
                f"application {app.name!r}: best residual mapping "
                f"guarantees {result.guaranteed_throughput}, below the "
                f"constraint {constraint}"
            )
        used = sum(
            1 for _ in result.mapping.used_tiles()
        )
        point = operating_point_from_result(
            f"{used}t/spiral",
            result,
            residual_arch,
            platform_area(residual_arch).slices,
        )
        placement = {tile: tile for tile in point.tiles}
        claim = self.residual.claim_for(point, placement)
        reason = self.residual.admissible(claim)
        if reason is not None:  # defensive: mapper honored capacities
            raise AdmissionError(
                f"spiral fallback produced an inadmissible mapping: "
                f"{reason}"
            )
        return point, placement, claim

    # ------------------------------------------------------------------
    # departure + migration
    # ------------------------------------------------------------------
    def depart(
        self, app_id: str, migrate: bool = False
    ) -> Dict[str, Any]:
        """Release ``app_id``; optionally rebalance the survivors.

        With ``migrate=True``, each remaining application (admission
        order) is offered its best now-feasible library point; it moves
        only when :class:`MigrationPolicy` says the downtime pays off.
        """
        with self._lock:
            app = self._apps.pop(app_id, None)
            if app is None:
                raise UnknownAppError(
                    f"platform is not running {app_id!r}"
                )
            self.residual.release(app.claim)
            self.counters["departures"] += 1
            if self.journal is not None:
                self.journal.append(
                    "depart", {"app_id": app_id, "migrate": migrate}
                )
            migrations: List[Dict[str, Any]] = []
            if migrate:
                for survivor in list(self._apps.values()):
                    moved = self._consider_migration(survivor)
                    if moved is not None:
                        migrations.append(moved)
            return {
                "app_id": app_id,
                "app": app.app_name,
                "departed": True,
                "freed_tiles": list(app.claim.tiles),
                "migrations": migrations,
            }

    def _consider_migration(
        self, app: PlacedApp
    ) -> Optional[Dict[str, Any]]:
        if app.library_key is None:
            return None
        library = self._library_for(app.library_key)
        if library is None:
            return None
        # Free the app's own resources so its current placement competes
        # with the alternatives on equal footing.
        self.residual.release(app.claim)
        best: Optional[Tuple[OperatingPoint, Dict[str, str],
                             ResourceClaim]] = None
        for point in library.eligible():
            if best is not None and point.throughput <= best[0].throughput:
                continue
            if point.throughput <= app.guarantee:
                continue
            found = find_placement(point, self.residual, app.pinned)
            if found is not None:
                best = (point, found[0], found[1])

        if best is not None:
            point, placement, claim = best
            wires = 0
            if self.residual.kind == "noc":
                wires = self.residual._noc.default_connection_wires
            downtime = transfer_cycles(app.point.state_bytes, wires)
            if self.policy.worthwhile(
                app.guarantee, point.throughput, downtime
            ):
                self.residual.claim(claim)
                old_guarantee = app.guarantee
                app.point = point
                app.placement = placement
                app.claim = claim
                app.guarantee = point.throughput
                app.source = "library"
                self.counters["migrations"] += 1
                if self.journal is not None:
                    self.journal.append(
                        "migrate",
                        {
                            "app_id": app.app_id,
                            "point": to_payload(point),
                            "placement": dict(
                                sorted(placement.items())
                            ),
                            "guarantee": encode_fraction(
                                point.throughput
                            ),
                        },
                    )
                return {
                    "app_id": app.app_id,
                    "app": app.app_name,
                    "point": point.label,
                    "tiles": list(claim.tiles),
                    "from_guarantee": encode_fraction(old_guarantee),
                    "to_guarantee": encode_fraction(app.guarantee),
                    "downtime_cycles": downtime,
                }
        # keep the current placement
        self.residual.claim(app.claim)
        return None

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def state_payload(self) -> Dict[str, Any]:
        """Canonical JSON-able platform state (counters excluded --
        rejections are not journaled, so only *state* replays)."""
        with self._lock:
            return {
                "architecture": dataclasses.asdict(self.arch_spec),
                "apps": [
                    {
                        "id": app.app_id,
                        "app": app.app_name,
                        "source": app.source,
                        "point": app.point.label,
                        "guarantee": encode_fraction(app.guarantee),
                        "constraint": encode_fraction(app.constraint),
                        "placement": dict(
                            sorted(app.placement.items())
                        ),
                        "tiles": list(app.claim.tiles),
                    }
                    for app in sorted(
                        self._apps.values(), key=lambda a: a.app_id
                    )
                ],
                "residual": self.residual.snapshot(),
                "next_app": self._next,
            }

    def state_digest(self) -> str:
        """Canonical byte form of the state, for identity checks."""
        return canonical_json(self.state_payload())

    def status(self) -> Dict[str, Any]:
        with self._lock:
            payload = self.state_payload()
            payload["configured"] = True
            payload["counters"] = dict(self.counters)
            payload["journal_length"] = (
                len(self.journal) if self.journal is not None else 0
            )
            return payload

    def occupancy(self) -> Dict[str, Any]:
        """The healthz view: occupancy plus transition counters."""
        with self._lock:
            return {
                "configured": True,
                "apps": len(self._apps),
                "residual_tiles": len(self.residual.free_tiles()),
                "total_tiles": self.residual.total_tiles(),
                "counters": dict(self.counters),
            }

    def apps(self) -> Tuple[PlacedApp, ...]:
        with self._lock:
            return tuple(
                sorted(self._apps.values(), key=lambda a: a.app_id)
            )


def _id_number(app_id: str) -> int:
    try:
        return int(app_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0
