"""Tests for the power/energy objective of the exploration engine.

Covers the three-objective dominance relation, budget pruning, the
energy columns of the reports, and -- most importantly -- the
byte-identity regression: runs without budgets must produce the exact
cache keys and artifact bytes they produced before the power subsystem
existed.
"""

from fractions import Fraction

from repro.arch.area import AreaEstimate
from repro.artifacts import canonical_json, from_payload, to_payload
from repro.flow.dse import (
    OBJECTIVES,
    DesignPoint,
    EvaluationOutcome,
    Evaluator,
    ParetoFront,
    UseCaseEvaluator,
    _front_sort_key,
    dominates,
    explore_design_space,
)
from repro.flow.fingerprint import evaluation_key
from repro.flow.report import exploration_csv
from repro.power import EnergyEstimate, PowerEstimate, PowerModel
from repro.scenarios import generate_scenarios, scenario_flow_spec


def _point(throughput, slices, energy_pj=None, **kwargs):
    energy = None
    if energy_pj is not None:
        energy = EnergyEstimate(
            compute_pj=Fraction(energy_pj),
            communication_pj=Fraction(0),
            static_pj=Fraction(0),
            tech_nm=45,
        )
    defaults = dict(
        tiles=2,
        interconnect="fsl",
        with_ca=False,
        throughput=Fraction(throughput),
        area=AreaEstimate(slices=slices, brams=4),
        constraint_met=True,
        energy=energy,
    )
    defaults.update(kwargs)
    return DesignPoint(**defaults)


def _app(seed=7, index=0, family="chain"):
    spec = generate_scenarios(family, index + 1, seed=seed)[index]
    return scenario_flow_spec(spec).build_application()


class TestDominance:
    def test_three_objectives_are_registered(self):
        assert [o.name for o in OBJECTIVES] == [
            "throughput", "slices", "energy",
        ]

    def test_energy_breaks_two_objective_dominance(self):
        """A bigger-but-thriftier point survives under 3 objectives."""
        fast_big = _point("1/100", 2000, energy_pj=500)
        slow_small_thrifty = _point("1/200", 1000, energy_pj=100)
        slow_small_hungry = _point("1/200", 1000, energy_pj=900)
        fast_hungry = _point("1/100", 1000, energy_pj=900)
        # equal on two axes, better energy -> dominates
        assert dominates(slow_small_thrifty, slow_small_hungry)
        # worse energy blocks what 2-objective dominance would allow:
        # fast_hungry beats slow_small_thrifty on throughput at equal
        # area, but spends 9x the energy
        assert not dominates(fast_hungry, slow_small_thrifty)
        assert dominates(
            fast_hungry, slow_small_thrifty, OBJECTIVES[:2]
        )
        assert not dominates(fast_big, slow_small_thrifty)

    def test_none_energy_objective_is_skipped(self):
        """Mixed fronts (some points estimated, some not) compare only
        the objectives both sides carry."""
        plain = _point("1/100", 1000)
        estimated = _point("1/200", 2000, energy_pj=100)
        assert dominates(plain, estimated)  # on throughput and slices
        assert not dominates(estimated, plain)
        # both None: energy contributes nothing either way
        assert dominates(_point("1/100", 1000), _point("1/200", 2000))

    def test_identical_points_do_not_dominate(self):
        a = _point("1/100", 1000, energy_pj=100)
        b = _point("1/100", 1000, energy_pj=100)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_front_grows_with_the_third_objective(self):
        """Adding an objective can only weaken dominance: every
        2-objective front member stays on the 3-objective front."""
        points = [
            _point("1/100", 2000, energy_pj=500),
            _point("1/200", 1000, energy_pj=100),
            _point("1/150", 1500, energy_pj=50),
            _point("1/300", 900, energy_pj=800),
        ]
        two = ParetoFront(OBJECTIVES[:2])
        three = ParetoFront()
        for p in points:
            two.add(p)
            three.add(p)
        assert len(three) >= len(two)
        assert all(p in three for p in two.points())


class TestTieBreakOrdering:
    def test_sort_key_orders_slices_brams_then_throughput(self):
        a = _point("1/100", 1000, area=AreaEstimate(1000, 2))
        b = _point("1/100", 1000, area=AreaEstimate(1000, 4))
        c = _point("1/50", 1000, area=AreaEstimate(1000, 4))
        assert _front_sort_key(a) < _front_sort_key(b)
        # same slices and brams: faster point first
        assert _front_sort_key(c) < _front_sort_key(b)

    def test_front_points_are_deterministically_ordered(self):
        # equal-slice incomparable points (differing brams/throughput)
        a = _point("1/100", 1000, energy_pj=500,
                   area=AreaEstimate(1000, 3))
        b = _point("1/50", 1000, energy_pj=900,
                   area=AreaEstimate(1000, 3))
        front_ab = ParetoFront()
        front_ba = ParetoFront()
        for front, order in ((front_ab, [a, b]), (front_ba, [b, a])):
            for p in order:
                front.add(p)
        assert front_ab.points() == front_ba.points()
        assert front_ab.points()[0] is b  # faster first on ties


class TestEvaluatorBudgets:
    def test_budget_prunes_over_budget_points(self):
        app = _app()
        result = explore_design_space(
            app,
            tile_counts=(1, 2, 3),
            interconnects=("noc",),
            power_budget=Fraction(300),
        )
        labels = {label for label, _ in result.failures}
        assert "3t/noc" in labels
        reasons = dict(result.failures)
        assert "over power budget" in reasons["3t/noc"]
        assert all(
            p.power.total_mw <= 300 for p in result.points
        )

    def test_energy_budget_prunes_everything_when_tiny(self):
        app = _app()
        result = explore_design_space(
            app,
            tile_counts=(1, 2),
            interconnects=("fsl",),
            energy_budget=Fraction(1, 1000),
        )
        assert not result.points
        assert all(
            "over energy budget" in reason
            for _, reason in result.failures
        )

    def test_tech_node_rides_the_model(self):
        app = _app()
        result = explore_design_space(
            app,
            tile_counts=(2,),
            interconnects=("fsl",),
            power_model=PowerModel(tech_nm=16),
        )
        (point,) = result.points
        assert point.power.tech_nm == 16
        assert point.energy.tech_nm == 16

    def test_rebrand_carries_power_and_energy(self):
        app = _app()
        evaluator = Evaluator(app, power_model=PowerModel())
        from repro.flow.dse import CandidatePoint

        fsl = CandidatePoint(tiles=1, interconnect="fsl")
        noc = CandidatePoint(tiles=1, interconnect="noc")
        outcome = evaluator.evaluate(fsl)
        rebranded = outcome.rebrand(noc)
        assert rebranded.point.power == outcome.point.power
        assert rebranded.point.energy == outcome.point.energy
        assert rebranded.label == "1t/noc"

    def test_use_case_energy_fold_is_worst_application(self):
        apps = [_app(seed=7), _app(seed=11, family="splitjoin")]
        evaluator = UseCaseEvaluator(apps, power_model=PowerModel())
        from repro.flow.dse import CandidatePoint

        outcome = evaluator.evaluate(
            CandidatePoint(tiles=2, interconnect="fsl")
        )
        assert outcome.point is not None
        per_app = [
            e.evaluate(CandidatePoint(tiles=2, interconnect="fsl"))
            for e in evaluator._evaluators
        ]
        worst = max(
            (o.point.energy for o in per_app), key=lambda e: e.total_pj
        )
        assert outcome.point.energy == worst
        assert outcome.point.power is not None


class TestByteIdentity:
    """Runs without budgets must be indistinguishable from a build
    without the power subsystem."""

    def test_evaluation_key_unchanged_without_budgets(self):
        legacy = evaluation_key("a", "b", None, None, "normal", "s")
        explicit = evaluation_key(
            "a", "b", None, None, "normal", "s", budgets=None
        )
        assert legacy == explicit
        assert legacy != evaluation_key(
            "a", "b", None, None, "normal", "s",
            budgets="tech=45,clk=10,power=None,energy=None",
        )

    def test_budget_token_changes_the_key(self):
        app = _app()
        plain = Evaluator(app)
        powered = Evaluator(app, power_budget=Fraction(300))
        assert plain._budget_token() is None
        assert powered._budget_token() is not None
        # different budgets never share a token
        assert powered._budget_token() != Evaluator(
            app, power_budget=Fraction(200)
        )._budget_token()
        assert powered._budget_token() != Evaluator(
            app,
            power_budget=Fraction(300),
            power_model=PowerModel(tech_nm=22),
        )._budget_token()

    def test_budgetless_payload_omits_power_keys(self):
        app = _app()
        result = explore_design_space(
            app, tile_counts=(1, 2), interconnects=("fsl",)
        )
        for point in result.points:
            payload = to_payload(point)
            assert "power" not in payload
            assert "energy" not in payload
            clone = from_payload(payload)
            assert clone.power is None and clone.energy is None
            assert canonical_json(to_payload(clone)) == canonical_json(
                payload
            )
        text = canonical_json(result.to_payload())
        assert '"power"' not in text and '"energy"' not in text

    def test_budgetless_table_and_csv_are_unchanged(self):
        app = _app()
        plain = explore_design_space(
            app, tile_counts=(1, 2), interconnects=("fsl",)
        )
        assert "nJ/iter" not in plain.as_table()
        header, *rows = exploration_csv(plain).splitlines()
        assert header.endswith(",strategy")
        assert "power_mw,energy_nj_per_iter" in header
        for row in rows:
            # empty cells, not zeros, when estimation was off
            assert ",,," in row or row.split(",")[-3:-1] == ["", ""]

    def test_powered_payload_round_trips(self):
        app = _app()
        result = explore_design_space(
            app,
            tile_counts=(1, 2),
            interconnects=("fsl",),
            power_model=PowerModel(),
        )
        assert "nJ/iter" in result.as_table()
        for point in result.points:
            payload = to_payload(point)
            clone = from_payload(payload)
            assert clone.power == point.power
            assert clone.energy == point.energy
            assert canonical_json(to_payload(clone)) == canonical_json(
                payload
            )
        rows = exploration_csv(result).splitlines()[1:]
        assert all(row.split(",")[-2] != "" for row in rows)


class TestOutcomeTypes:
    def test_failure_outcome_has_no_point(self):
        outcome = EvaluationOutcome(label="x", reason="nope")
        assert not outcome.feasible

    def test_power_estimate_payload_kinds(self):
        power = PowerEstimate(
            static_mw=Fraction(1), dynamic_mw=Fraction(2), tech_nm=45
        )
        payload = to_payload(power)
        assert payload["kind"] == "power-estimate"
        energy = EnergyEstimate(
            compute_pj=Fraction(1),
            communication_pj=Fraction(2),
            static_pj=Fraction(3),
            tech_nm=45,
        )
        assert to_payload(energy)["kind"] == "energy-estimate"
