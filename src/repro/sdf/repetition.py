"""Repetition vectors and consistency analysis.

An SDF graph is *consistent* when the balance equations

    q[src(e)] * production(e) == q[dst(e)] * consumption(e)   for every edge e

have a non-trivial solution ``q``.  The smallest positive integer solution is
the *repetition vector*; one *graph iteration* fires each actor ``q[a]``
times and returns every channel to its initial token count.  Throughput
(Section 5: "long term average number of graph iterations per time unit") is
defined in terms of these iterations.

The solver works in exact rational arithmetic, so arbitrarily skewed rates
(e.g. the 1↔10 rates of the MJPEG VLD actor) cannot cause rounding issues.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict

from repro.exceptions import InconsistentGraphError
from repro.sdf.graph import SDFGraph


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


def repetition_vector(graph: SDFGraph) -> Dict[str, int]:
    """Compute the minimal repetition vector of ``graph``.

    Works per weakly-connected component: each component is normalized so
    that its smallest entry set is minimal, then all components are merged
    (their relative firing counts are independent, so each is minimized
    separately).

    Raises
    ------
    InconsistentGraphError
        If any balance equation is unsatisfiable.
    """
    fractions: Dict[str, Fraction] = {}

    for component in graph.undirected_components():
        # Seed the component and propagate rates breadth-first.
        start = component[0]
        fractions[start] = Fraction(1)
        stack = [start]
        while stack:
            node = stack.pop()
            rate = fractions[node]
            for edge in graph.out_edges(node):
                implied = rate * edge.production / edge.consumption
                known = fractions.get(edge.dst)
                if known is None:
                    fractions[edge.dst] = implied
                    stack.append(edge.dst)
                elif known != implied:
                    raise InconsistentGraphError(
                        f"graph {graph.name!r} is inconsistent at edge "
                        f"{edge.name!r}: {edge.src}->{edge.dst} implies rate "
                        f"{implied} for {edge.dst!r} but {known} was already "
                        f"derived"
                    )
            for edge in graph.in_edges(node):
                implied = rate * edge.consumption / edge.production
                known = fractions.get(edge.src)
                if known is None:
                    fractions[edge.src] = implied
                    stack.append(edge.src)
                elif known != implied:
                    raise InconsistentGraphError(
                        f"graph {graph.name!r} is inconsistent at edge "
                        f"{edge.name!r}: {edge.src}->{edge.dst} implies rate "
                        f"{implied} for {edge.src!r} but {known} was already "
                        f"derived"
                    )

        # Scale this component to the smallest positive integer vector.
        denominator_lcm = 1
        for name in component:
            denominator_lcm = _lcm(denominator_lcm, fractions[name].denominator)
        numerator_gcd = 0
        for name in component:
            scaled = fractions[name] * denominator_lcm
            numerator_gcd = gcd(numerator_gcd, scaled.numerator)
        for name in component:
            fractions[name] = (
                fractions[name] * denominator_lcm / numerator_gcd
            )

    result: Dict[str, int] = {}
    for actor in graph:
        value = fractions[actor.name]
        assert value.denominator == 1 and value.numerator > 0
        result[actor.name] = value.numerator
    return result


def is_consistent(graph: SDFGraph) -> bool:
    """True when ``graph`` has a repetition vector."""
    try:
        repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def iteration_firings(graph: SDFGraph) -> int:
    """Total number of actor firings in one graph iteration."""
    return sum(repetition_vector(graph).values())


def check_initial_token_feasibility(graph: SDFGraph) -> None:
    """Sanity check: every edge's initial token count must let one iteration
    return the channel to its starting state.

    This is automatic for consistent graphs (the net token change per
    iteration is zero); the function exists as an explicit invariant check
    used by property-based tests.
    """
    q = repetition_vector(graph)
    for edge in graph.edges:
        produced = q[edge.src] * edge.production
        consumed = q[edge.dst] * edge.consumption
        assert produced == consumed, (
            f"edge {edge.name!r} changes by {produced - consumed} tokens "
            f"per iteration -- repetition vector is wrong"
        )
