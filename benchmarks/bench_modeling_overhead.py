"""Section 6.3: modeling and implementation overhead of the SDF approach.

Two quantities the paper reports for the running MJPEG system:

* the subHeader initialization channels -- which a manual implementation
  would send once per frame instead of once per MCU -- "are relatively
  small and use only 1% of the communication";
* the static-order scheduler "reduces the scheduler to a lookup table",
  so its per-firing dispatch cost is a negligible share of processor time.

Both are measured here on the running FSL platform.
"""

import pytest

from benchmarks.conftest import (
    MEASURE_ITERATIONS,
    WARMUP_ITERATIONS,
    write_results,
)
from repro.arch import architecture_from_template
from repro.flow import DesignFlow
from repro.mjpeg import build_mjpeg_application
from repro.sdf.repetition import repetition_vector


def run_platform(workloads):
    encoded = workloads["gradient"]
    app = build_mjpeg_application(encoded)
    arch = architecture_from_template(5, "fsl")
    flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
    result = flow.run(
        iterations=MEASURE_ITERATIONS, warmup_iterations=WARMUP_ITERATIONS
    )
    return app, arch, result


def test_section63_modeling_overhead(benchmark, workloads):
    app, arch, result = benchmark.pedantic(
        lambda: run_platform(workloads), rounds=1, iterations=1
    )
    simulator = result.simulator

    traffic = simulator.traffic()
    subheader_share = traffic.share_of("subHeader1", "subHeader2")

    # Scheduler (lookup table) overhead: dispatch cycles as a share of the
    # cycles actors actually burned on the processing elements.
    records = simulator.execution_time_records()
    q = repetition_vector(app.graph)
    dispatch_total = 0
    actor_total = 0
    for actor, cycles_list in records.items():
        tile = arch.tile(result.mapping_result.mapping.tile_of(actor))
        dispatch_total += (
            tile.processor.context_switch_cycles * len(cycles_list)
        )
        actor_total += sum(cycles_list)
    scheduling_share = dispatch_total / (actor_total + dispatch_total)

    lines = [
        "traffic per channel (bytes):",
    ]
    for channel, count in sorted(traffic.bytes_by_channel.items()):
        lines.append(f"  {channel:<12} {count:>10}")
    lines.append("")
    lines.append(
        f"subHeader share of communication: {100 * subheader_share:.2f}% "
        "(paper: ~1%)"
    )
    lines.append(
        f"static-order scheduling overhead: {100 * scheduling_share:.2f}% "
        "of PE time (lookup-table dispatch)"
    )
    table = "\n".join(lines)
    path = write_results("section63_modeling_overhead.txt", table)
    print("\n" + table + f"\n-> {path}")

    # Shapes: the subheader channels are a tiny share of the traffic, and
    # the lookup-table scheduler costs almost nothing.
    assert 0.0 < subheader_share < 0.02
    assert scheduling_share < 0.01
