"""Communication modelling (paper Section 4.1-4.2, Fig. 4).

The interconnect is abstracted by a standardized network interface moving
32-bit words.  Sending a token means serializing it into ``N`` words,
pushing the words through a latency-rate channel, and deserializing on the
far side.  :mod:`repro.comm.model` expands a mapped SDF edge into the
8-actor parameterized model of Fig. 4; :mod:`repro.comm.params` holds the
per-channel interconnect parameters (``w``, ``alpha_n``, latency, rate) and
:mod:`repro.comm.serialization` the PE-based vs. CA-based (de)serialization
cost models used by the Section 6.3 overhead experiment.
"""

from repro.comm.params import (
    WORD_BITS,
    WORD_BYTES,
    ChannelParameters,
    words_per_token,
)
from repro.comm.serialization import (
    CASerialization,
    PESerialization,
    SerializationModel,
)
from repro.comm.model import CommActorNames, expand_channel, expanded_names

__all__ = [
    "WORD_BITS",
    "WORD_BYTES",
    "ChannelParameters",
    "words_per_token",
    "SerializationModel",
    "PESerialization",
    "CASerialization",
    "CommActorNames",
    "expand_channel",
    "expanded_names",
]
