"""Tiered throughput engine: one facade over three exact analyses.

Every throughput guarantee in the flow -- buffer sizing, the mapping
constraint loop, design-space exploration, operating-point library
builds, served flows -- needs the *same* number: the self-timed
throughput of a bounded SDF graph as an exact :class:`fractions.
Fraction`.  Three implementations of that number exist in this package,
with wildly different costs:

* **analytic** -- expand the graph to HSDF (:mod:`repro.sdf.hsdf`) and
  take ``1 / MCM`` (:mod:`repro.sdf.mcm`).  Simulation-free and exact,
  but only expressible when the resource constraints are (see
  :meth:`ThroughputEngine.analytic_decline_reason`);
* **vectorized** -- a trimmed array-of-ints state-space simulation:
  integer time, preallocated token/credit arrays, no per-event name or
  trace bookkeeping, no ``Fraction`` in the inner loop; the exact
  ``Fraction`` is reconstructed once, at period detection.  Starts
  firings in exactly the deterministic order of the reference engine,
  so every result field (period, transient, ...) is bit-identical;
* **reference** -- :class:`~repro.sdf.throughput.ThroughputAnalyzer`
  over the full-featured :class:`~repro.sdf.simulation.
  SelfTimedSimulator` (the PR-3 incremental engine), kept as the
  differential oracle and for callers that need hooks or traces.

:class:`ThroughputEngine` owns the tier policy.  Whether the analytic
tier *pays* cannot be read off the graph: two graphs with identical
size features can have state spaces of 6 and 900 iterations (the
whole reason the state space is simulated rather than predicted), so
``auto`` decides adaptively.  When the HSDF transform is tractable and
the binding / static-order constraints allow it, analyze() first runs
the vectorized core for a probe bounded by the *estimated analytic
cost* (at least :data:`PROBE_ITERATIONS` iterations, stretched by
:data:`PROBE_WORK_FACTOR` for graphs whose HSDF expansion is large
relative to their per-iteration simulation cost): a state space that
recurs within the probe *is* the cheaper exact analysis, and the
engine keeps its result; one that outlives it has already cost about
what the transform would, and the engine escalates to the
simulation-free analytic tier.  A relaxation budget
(:data:`MCM_RELAXATION_FACTOR` x HSDF size) backstops the rare
adversarial expansion where the cycle-ratio iteration itself grinds;
exceeding it falls back to the full vectorized run.  The chosen tier
and the fallback reason are recorded in the
:class:`~repro.sdf.throughput.ThroughputResult`.  The ``mode`` knob
(``auto``/``analytic``/``vectorized``/``reference``) pins a tier
(no probe, no budget); a pinned ``analytic`` on an ineligible graph
raises :class:`EngineUnsupportedError` rather than silently
degrading.

Consumers that need raw *stepping* (static-order derivation, the
platform simulator, latency scans) obtain their simulator through
:func:`build_simulator`, keeping this module the single construction
point of the analysis stack -- CI forbids direct
``SelfTimedSimulator(...)`` calls outside :mod:`repro.sdf`.

Tier usage is counted process-wide (:func:`engine_counters`, surfaced
by ``GET /v1/healthz``) and per scope via
:func:`collect_engine_counters` (surfaced in
:class:`~repro.flow.effort.EffortReport`).
"""

from __future__ import annotations

import contextvars
import heapq
import threading
from contextlib import contextmanager
from dataclasses import replace
from fractions import Fraction
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import DeadlockError, SimulationError
from repro.sdf.deadlock import deadlock_report
from repro.sdf.graph import SDFGraph, validate_graph
from repro.sdf.hsdf import to_hsdf
from repro.sdf.mcm import CycleRatioBudgetError, maximum_cycle_mean
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import SelfTimedSimulator
from repro.sdf.throughput import (
    ThroughputAnalyzer,
    ThroughputResult,
    UnboundedExecutionError,
)

#: The selectable engine tiers, fastest-preferred first.
ENGINE_MODES: Tuple[str, ...] = (
    "auto", "analytic", "vectorized", "reference"
)

#: HSDF expansion budget: total actor copies (sum of the repetition
#: vector).  Beyond this the quadratic token-dependency scan of the
#: transform costs more than the simulation it replaces.
MAX_HSDF_COPIES = 256
#: HSDF expansion budget: token dependencies examined by the transform
#: (``sum over edges of q[dst] * consumption``).
MAX_HSDF_WORK = 20_000
#: ``auto`` probes the vectorized core for at least this many iterations
#: before escalating to the analytic tier.  Short state spaces (every
#: observed easy instance recurs within ~14 iterations) finish inside
#: the probe, where simulation is cheaper than the HSDF transform.
PROBE_ITERATIONS = 24
#: The probe is stretched in proportion to the *estimated analytic
#: cost*: the transform + cycle-ratio iteration costs roughly a fixed
#: amount per HSDF unit (actor copies + token dependencies), while one
#: simulated iteration costs roughly a fixed amount per graph unit
#: (actors + edges).  Measured across scenario families the ratio of
#: those two constants is ~30; probing for
#: ``PROBE_WORK_FACTOR * hsdf_units / graph_units`` iterations means
#: escalation only happens once the simulation has already spent about
#: what the analytic tier would cost -- so a misjudged escalation at
#: most doubles the analysis, while a state space that keeps running
#: 10x longer still yields nearly the full analytic win.
PROBE_WORK_FACTOR = 32
#: Relaxation budget for the analytic tier's cycle-ratio iteration,
#: as a multiple of HSDF size (actor copies + dependency edges).
#: Well-behaved instances stay under ~450 relaxations per size unit;
#: adversarial dense multi-rate expansions run into the thousands and
#: are cheaper to simulate.
MCM_RELAXATION_FACTOR = 512


class EngineUnsupportedError(SimulationError):
    """A pinned engine mode cannot analyze this graph exactly.

    Raised only for forced modes (``--engine analytic`` on a graph whose
    constraints the HSDF transform cannot express); ``auto`` never
    raises this -- it falls back and records the reason instead.
    """


# ----------------------------------------------------------------------
# tier counters
# ----------------------------------------------------------------------
class EngineCounters:
    """Monotonic per-tier analysis counts (thread-safe)."""

    __slots__ = ("_lock", "analytic", "vectorized", "reference")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.analytic = 0
        self.vectorized = 0
        self.reference = 0

    def record(self, tier: str) -> None:
        with self._lock:
            setattr(self, tier, getattr(self, tier) + 1)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "analytic": self.analytic,
                "vectorized": self.vectorized,
                "reference": self.reference,
            }

    def total(self) -> int:
        with self._lock:
            return self.analytic + self.vectorized + self.reference


_GLOBAL_COUNTERS = EngineCounters()

_collector_stack: "contextvars.ContextVar[Tuple[EngineCounters, ...]]" = (
    contextvars.ContextVar("engine_counter_collectors", default=())
)


def engine_counters() -> EngineCounters:
    """The process-wide tier counters (``/v1/healthz`` reads these)."""
    return _GLOBAL_COUNTERS


@contextmanager
def collect_engine_counters() -> Iterator[EngineCounters]:
    """Additionally count tier hits into a scoped collector.

    Collectors nest; every analysis inside the ``with`` block (in this
    context -- worker threads spawned inside the block keep their own
    context and only feed the process-wide counters) is recorded in the
    yielded :class:`EngineCounters` as well as globally.
    """
    collector = EngineCounters()
    token = _collector_stack.set(_collector_stack.get() + (collector,))
    try:
        yield collector
    finally:
        _collector_stack.reset(token)


def _record_tier(tier: str) -> None:
    _GLOBAL_COUNTERS.record(tier)
    for collector in _collector_stack.get():
        collector.record(tier)


# ----------------------------------------------------------------------
# simulator construction facade
# ----------------------------------------------------------------------
def build_simulator(
    graph: SDFGraph,
    auto_concurrency: Optional[int] = 1,
    processor_of: Optional[Dict[str, str]] = None,
    static_order: Optional[Dict[str, Sequence[str]]] = None,
    execution_time_of: Optional[Callable[[str, int], int]] = None,
    on_finish: Optional[Callable[[str, int], None]] = None,
    record_trace: bool = False,
) -> SelfTimedSimulator:
    """Construct the full-featured self-timed simulator.

    The one sanctioned way to obtain a stepping/tracing/hooked simulator
    outside :mod:`repro.sdf` (static-order derivation, the platform
    simulator, latency scans).  Throughput-only callers should use
    :class:`ThroughputEngine` instead, which picks a cheaper tier when
    it can.
    """
    return SelfTimedSimulator(
        graph,
        auto_concurrency=auto_concurrency,
        processor_of=processor_of,
        static_order=static_order,
        execution_time_of=execution_time_of,
        on_finish=on_finish,
        record_trace=record_trace,
    )


def normalize_engine_mode(mode: str) -> str:
    """Validate an engine mode string; raises :class:`ValueError`."""
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown throughput engine mode {mode!r}; pick from "
            f"{', '.join(ENGINE_MODES)}"
        )
    return mode


# ----------------------------------------------------------------------
# the vectorized tier
# ----------------------------------------------------------------------
class _VectorizedCore(SelfTimedSimulator):
    """Array-of-ints state-space core for throughput detection only.

    Inherits the integer-indexed adjacency and the dirty-set engine of
    :class:`SelfTimedSimulator` but replaces the per-event path with
    trimmed variants: no started/finished name lists, no trace or
    max-token bookkeeping, no hook indirection -- just token array
    updates, the completion heap and the dirty sets.  Firing start
    order is kept byte-for-byte identical to the parent (static-order
    processors by declaration rank, then greedy actors in insertion
    order), so :meth:`run_throughput` reproduces the reference
    analyzer's state keys and therefore its exact period, transient
    and throughput.
    """

    def __init__(
        self,
        graph: SDFGraph,
        auto_concurrency: Optional[int] = 1,
        processor_of: Optional[Dict[str, str]] = None,
        static_order: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        super().__init__(
            graph,
            auto_concurrency=auto_concurrency,
            processor_of=processor_of,
            static_order=static_order,
        )

    def _duration(self, idx: int) -> int:
        # Static execution times only (the engine never passes the
        # per-firing override hook); validated non-negative at graph
        # construction.
        return self._exec_time[idx]

    def _finish_fast(self, idx: int) -> None:
        tokens = self._tokens
        consumer = self._consumer_of
        mark = self._mark_actor
        for e, p in self._out_rates[idx]:
            tokens[e] += p
            mark(consumer[e])
        self._ongoing[idx] -= 1
        self._completed[idx] += 1
        mark(idx)
        pid = self._proc_of[idx]
        if pid >= 0:
            self._mark_proc_free(pid)

    def _run_static_proc_fast(self, pid: int) -> None:
        order = self._order_idx[pid]
        interleaved = self._interleaved_idx.get(pid, ())
        while self._proc_busy[pid] <= self.now:
            inter = -1
            for i in interleaved:
                if self._is_ready_idx(i):
                    inter = i
                    break
            if inter >= 0:
                self._start_firing(inter)
                continue
            idx = order[self._order_pos[pid] % len(order)]
            if not self._is_ready_idx(idx):
                break
            self._start_firing(idx)
            self._order_pos[pid] += 1

    def _start_all_ready_fast(self) -> None:
        if self._dirty_procs:
            dirty_procs = self._dirty_procs
            self._dirty_procs = []
            if len(dirty_procs) > 1:
                dirty_procs.sort(key=self._static_rank.__getitem__)
            for pid in dirty_procs:
                self._proc_dirty[pid] = False
                self._run_static_proc_fast(pid)
        if self._dirty_actors:
            dirty = self._dirty_actors
            self._dirty_actors = []
            if len(dirty) > 1:
                dirty.sort()
            proc_busy = self._proc_busy
            for idx in dirty:
                self._actor_dirty[idx] = False
                pid = self._proc_of[idx]
                if pid >= 0:
                    while (
                        self._is_ready_idx(idx)
                        and proc_busy[pid] <= self.now
                    ):
                        self._start_firing(idx)
                else:
                    while self._is_ready_idx(idx):
                        self._start_firing(idx)

    def run_throughput(
        self, ref_idx: int, q_ref: int, max_iterations: int
    ) -> ThroughputResult:
        """Periodic-phase detection, fused with the event loop.

        Semantically identical to driving
        :meth:`SelfTimedSimulator.step` from
        :class:`~repro.sdf.throughput.ThroughputAnalyzer` (a started
        firing never enables another start, so one dirty-set pass per
        completion batch reaches the same fixpoint as step()'s two),
        with the same error messages on the same conditions.
        """
        graph = self.graph
        completed = self._completed
        queue = self._queue
        heappop = heapq.heappop
        seen: Dict[tuple, Tuple[int, int]] = {}
        iterations_done = 0

        self._start_all_ready_fast()
        while iterations_done < max_iterations:
            if not queue:
                raise DeadlockError(
                    f"mapped graph {graph.name!r} blocked after "
                    f"{iterations_done} iteration(s) at t={self.now}; the "
                    "static-order schedule or buffer sizes admit no "
                    "execution"
                )
            end = queue[0][0]
            self.now = end
            while queue and queue[0][0] == end:
                self._finish_fast(heappop(queue)[2])
            self._start_all_ready_fast()
            completed_iterations = completed[ref_idx] // q_ref
            if completed_iterations > iterations_done:
                iterations_done = completed_iterations
                key = self.state_key()
                previous = seen.get(key)
                if previous is not None:
                    prev_iterations, prev_time = previous
                    period = end - prev_time
                    iter_count = iterations_done - prev_iterations
                    if period <= 0:
                        raise SimulationError(
                            f"graph {graph.name!r} completes {iter_count} "
                            "iteration(s) in zero time; all cycle times "
                            "are zero -- throughput is unbounded"
                        )
                    return ThroughputResult(
                        throughput=Fraction(iter_count, period),
                        period=period,
                        iterations_per_period=iter_count,
                        transient_iterations=prev_iterations,
                        tier="vectorized",
                    )
                seen[key] = (iterations_done, end)

        raise UnboundedExecutionError(
            f"no periodic phase within {max_iterations} iterations of "
            f"{graph.name!r}; channels likely grow without bound -- add "
            "buffer back-edges (repro.sdf.buffers.add_buffer_edges) before "
            "analyzing"
        )


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
def _is_strongly_connected(graph: SDFGraph) -> bool:
    """One SCC containing every actor (self-edges ignored)."""
    actors = [a.name for a in graph]
    if len(actors) <= 1:
        return True
    forward: Dict[str, List[str]] = {a: [] for a in actors}
    backward: Dict[str, List[str]] = {a: [] for a in actors}
    for e in graph.edges:
        if e.src != e.dst:
            forward[e.src].append(e.dst)
            backward[e.dst].append(e.src)

    def reaches_all(adjacency: Dict[str, List[str]]) -> bool:
        seen = {actors[0]}
        stack = [actors[0]]
        while stack:
            for nxt in adjacency[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(actors)

    return reaches_all(forward) and reaches_all(backward)


class ThroughputEngine:
    """Tier-picking throughput analyzer for one graph structure.

    Construction validates the graph and resolves the *structural* tier
    policy once (is the analytic tier expressible at all?); the
    adaptive probe in :meth:`analyze` then decides per call whether to
    escalate to it.  Every call reuses the built analysis stack --
    like :class:`~repro.sdf.throughput.ThroughputAnalyzer`, in-place
    mutation of ``initial_tokens`` between calls is honoured by every
    tier (the simulators re-read tokens on reset; the analytic tier
    re-expands from the live edge objects).

    Parameters mirror :func:`repro.sdf.throughput.analyze_throughput`
    plus ``mode``, one of :data:`ENGINE_MODES`.
    """

    def __init__(
        self,
        graph: SDFGraph,
        auto_concurrency: Optional[int] = 1,
        processor_of: Optional[Dict[str, str]] = None,
        static_order: Optional[Dict[str, Sequence[str]]] = None,
        reference_actor: Optional[str] = None,
        max_iterations: int = 10_000,
        mode: str = "auto",
    ) -> None:
        self.mode = normalize_engine_mode(mode)
        validate_graph(graph)
        self.graph = graph
        self.max_iterations = max_iterations
        self._auto_concurrency = auto_concurrency
        self._processor_of = processor_of
        self._static_order = static_order
        self._reference_actor = reference_actor
        self._q = repetition_vector(graph)
        self._hsdf_units = 0  # set by the eligibility check below
        self._decline = self._analytic_decline_reason()
        self._vector_sim: Optional[_VectorizedCore] = None
        self._vector_ref: Optional[Tuple[int, int]] = None
        self._analyzer: Optional[ThroughputAnalyzer] = None
        self._trace_sim: Optional[SelfTimedSimulator] = None

    # -- tier policy ---------------------------------------------------
    def _analytic_decline_reason(self) -> Optional[str]:
        """Why the analytic tier is OFF for this graph, or None."""
        if self._auto_concurrency != 1:
            return (
                "auto-concurrency != 1 (the HSDF transform models "
                "sequential actors)"
            )
        if self._static_order:
            return (
                "static-order schedules are not expressible in the "
                "HSDF transform"
            )
        if self._processor_of:
            members: Dict[str, List[str]] = {}
            for actor, proc in self._processor_of.items():
                members.setdefault(proc, []).append(actor)
            shared = sorted(
                p for p, actors in members.items() if len(actors) > 1
            )
            if shared:
                return (
                    f"processor(s) {', '.join(shared)} time-share "
                    "multiple actors"
                )
            for actor in self._processor_of:
                if self.graph.actor(actor).concurrency not in (None, 1):
                    return (
                        f"binding serializes actor {actor!r} below its "
                        "concurrency cap"
                    )
        if not _is_strongly_connected(self.graph):
            return (
                "graph is not strongly connected; channels without "
                "feedback diverge under self-timed execution"
            )
        copies = sum(self._q.values())
        if copies > MAX_HSDF_COPIES:
            return f"HSDF expansion too large ({copies} actor copies)"
        work = sum(
            self._q[e.dst] * e.consumption for e in self.graph.edges
        )
        if work > MAX_HSDF_WORK:
            return (
                f"HSDF expansion too large ({work} token dependencies)"
            )
        self._hsdf_units = copies + work
        return None

    def _probe_iterations(self) -> int:
        """Probe length scaled to the estimated analytic cost.

        ``_hsdf_units`` estimates the transform + MCM cost;
        ``actors + edges`` estimates the cost of one simulated
        iteration.  See :data:`PROBE_WORK_FACTOR`.
        """
        graph_units = len(self.graph) + len(self.graph.edges)
        return max(
            PROBE_ITERATIONS,
            PROBE_WORK_FACTOR * self._hsdf_units // graph_units,
        )

    @property
    def analytic_decline_reason(self) -> Optional[str]:
        """Why ``auto`` will not use the analytic tier (None: it will)."""
        return self._decline

    def tier_for(self) -> Tuple[str, Optional[str]]:
        """Static tier policy, with the fallback reason.

        For ``auto`` this is the tier *on the menu* before the adaptive
        probe runs: ``("analytic", None)`` means the analytic tier is
        eligible and :meth:`analyze` will escalate to it whenever the
        state space outlives the work-scaled probe (see
        :data:`PROBE_WORK_FACTOR`); ``("vectorized", reason)`` means
        analytic is structurally off.
        The tier that actually produced a result is on
        ``ThroughputResult.tier``.
        """
        if self.mode == "auto":
            if self._decline is None:
                return "analytic", None
            return "vectorized", self._decline
        return self.mode, f"engine mode {self.mode!r} forced"

    # -- analysis ------------------------------------------------------
    def analyze(
        self,
        max_iterations: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> ThroughputResult:
        """One throughput analysis from the graph's current tokens.

        Semantics (errors, messages, observable ordering) match
        :meth:`repro.sdf.throughput.ThroughputAnalyzer.analyze`; the
        returned result additionally carries ``tier`` and
        ``tier_reason``.
        """
        if max_iterations is None:
            max_iterations = self.max_iterations
        if check_deadlock:
            report = deadlock_report(self.graph)
            if report is not None:
                raise DeadlockError(report)
        if self.mode != "auto":
            reason = f"engine mode {self.mode!r} forced"
            if self.mode == "analytic":
                if self._decline is not None:
                    raise EngineUnsupportedError(
                        f"analytic engine unavailable for "
                        f"{self.graph.name!r}: {self._decline}"
                    )
                _record_tier("analytic")
                result = self._analyze_analytic(budgeted=False)
            elif self.mode == "vectorized":
                _record_tier("vectorized")
                result = self._analyze_vectorized(max_iterations)
            else:
                _record_tier("reference")
                result = self._analyze_reference(max_iterations)
            return replace(result, tier_reason=reason)
        if self._decline is not None:
            _record_tier("vectorized")
            result = self._analyze_vectorized(max_iterations)
            return replace(result, tier_reason=self._decline)
        # Adaptive probe: a state space that recurs before the simulation
        # has spent about the analytic tier's estimated cost is cheaper
        # to simulate than to transform; one that does not is exactly
        # where simulation cost can explode.
        probe = min(self._probe_iterations(), max_iterations)
        try:
            result = self._analyze_vectorized(probe)
        except UnboundedExecutionError:
            pass
        else:
            _record_tier("vectorized")
            return replace(result, tier_reason=(
                f"state space recurred within the {probe}-iteration "
                "probe; simulation is cheaper than the HSDF transform"
            ))
        try:
            result = self._analyze_analytic(budgeted=True)
        except CycleRatioBudgetError:
            _record_tier("vectorized")
            result = self._analyze_vectorized(max_iterations)
            return replace(result, tier_reason=(
                "cycle-ratio iteration exceeded its relaxation budget; "
                "fell back to the vectorized simulation"
            ))
        _record_tier("analytic")
        return replace(result, tier_reason=(
            f"state space outlived the {probe}-iteration probe"
        ))

    def _resolve_reference(self) -> str:
        ref = self._reference_actor or self.graph.actors[0].name
        if ref not in self.graph:
            raise SimulationError(
                f"reference actor {ref!r} not in graph"
            )
        return ref

    def _analyze_analytic(self, budgeted: bool = True) -> ThroughputResult:
        # The reference actor does not influence the MCM, but an unknown
        # one is still an error (historic contract).
        self._resolve_reference()
        # Re-expand per call: the expansion embeds initial tokens, which
        # callers mutate in place between calls; the eligibility gate
        # bounds the expansion cost.
        hsdf = to_hsdf(self.graph)
        max_relaxations = (
            MCM_RELAXATION_FACTOR * (len(hsdf) + len(hsdf.edges))
            if budgeted else None
        )
        mcm = maximum_cycle_mean(hsdf, max_relaxations)
        if mcm is None:
            # Unreachable for a strongly connected graph (the sequential
            # actor cycles alone close a loop); kept as a typed error for
            # defense in depth.
            raise EngineUnsupportedError(
                f"analytic engine found no cycle in {self.graph.name!r}; "
                "throughput is not cycle-limited"
            )
        if mcm == 0:
            raise SimulationError(
                f"graph {self.graph.name!r} has only zero-time cycles; "
                "iterations complete in zero time -- throughput is "
                "unbounded"
            )
        throughput = 1 / mcm
        # The analytic tier proves the long-run rate directly; the
        # synthesized periodic phase is the smallest one realizing it
        # (state-space tiers may report a longer concrete phase).
        return ThroughputResult(
            throughput=throughput,
            period=throughput.denominator,
            iterations_per_period=throughput.numerator,
            transient_iterations=0,
            tier="analytic",
        )

    def _analyze_vectorized(self, max_iterations: int) -> ThroughputResult:
        sim = self._vector_sim
        if sim is None:
            # Historic ordering: simulator construction errors surface
            # before the reference-actor check.
            sim = _VectorizedCore(
                self.graph,
                auto_concurrency=self._auto_concurrency,
                processor_of=self._processor_of,
                static_order=self._static_order,
            )
            self._vector_sim = sim
        else:
            sim.reset()
        if self._vector_ref is None:
            ref = self._resolve_reference()
            self._vector_ref = (sim._actor_index[ref], self._q[ref])
        ref_idx, q_ref = self._vector_ref
        return sim.run_throughput(ref_idx, q_ref, max_iterations)

    def _analyze_reference(self, max_iterations: int) -> ThroughputResult:
        if self._analyzer is None:
            self._analyzer = ThroughputAnalyzer(
                self.graph,
                auto_concurrency=self._auto_concurrency,
                processor_of=self._processor_of,
                static_order=self._static_order,
                reference_actor=self._reference_actor,
                max_iterations=self.max_iterations,
            )
        # The engine already ran the liveness pre-check when asked to.
        return self._analyzer.analyze(
            max_iterations=max_iterations, check_deadlock=False
        )

    # -- latency (shared analysis stack) -------------------------------
    def first_iteration_latency(self, max_firings: int = 100_000) -> int:
        """Cold-start makespan of the first iteration (warm-reusable)."""
        from repro.sdf.latency import run_first_iteration

        sim = self._plain_sim()
        return run_first_iteration(sim, self.graph, self._q, max_firings)

    def source_to_sink_latency(
        self,
        source: str,
        sink: str,
        iterations: int = 10,
        warmup: int = 3,
        max_firings: int = 500_000,
    ) -> int:
        """Periodic-regime source-to-sink latency (warm-reusable)."""
        from repro.sdf.latency import run_source_to_sink

        sim = self._trace_sim
        if sim is None:
            sim = build_simulator(
                self.graph,
                auto_concurrency=self._auto_concurrency,
                processor_of=self._processor_of,
                static_order=self._static_order,
                record_trace=True,
            )
            self._trace_sim = sim
        else:
            sim.reset()
        return run_source_to_sink(
            sim, self.graph, self._q, source, sink,
            iterations=iterations, warmup=warmup,
            max_firings=max_firings,
        )

    def _plain_sim(self) -> SelfTimedSimulator:
        sim = self._vector_sim
        if sim is None:
            sim = _VectorizedCore(
                self.graph,
                auto_concurrency=self._auto_concurrency,
                processor_of=self._processor_of,
                static_order=self._static_order,
            )
            self._vector_sim = sim
        else:
            sim.reset()
        return sim
