"""Tests for the predictable TDM arbiter (Section 7 future work)."""

import pytest

from repro.arch.arbiter import TDMArbiter, validate_shared_peripheral
from repro.exceptions import ArchitectureError


@pytest.fixture
def arbiter():
    # Frame: t0 t1 t0 t2 -- t0 gets half the bandwidth.
    return TDMArbiter(
        resource="sdram",
        slot_table=("t0", "t1", "t0", "t2"),
        slot_cycles=10,
    )


class TestStructure:
    def test_frame_length(self, arbiter):
        assert arbiter.frame_cycles == 40

    def test_requesters(self, arbiter):
        assert arbiter.requesters() == ("t0", "t1", "t2")

    def test_slots_of(self, arbiter):
        assert arbiter.slots_of("t0") == (0, 2)
        assert arbiter.slots_of("t1") == (1,)
        assert arbiter.slots_of("missing") == ()

    def test_bandwidth_share(self, arbiter):
        assert arbiter.bandwidth_share("t0") == 0.5
        assert arbiter.bandwidth_share("t1") == 0.25

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            TDMArbiter(resource="", slot_table=("a",))
        with pytest.raises(ArchitectureError):
            TDMArbiter(resource="x", slot_table=())
        with pytest.raises(ArchitectureError):
            TDMArbiter(resource="x", slot_table=("a",), slot_cycles=0)


class TestWorstCaseBounds:
    def test_single_slot_requester_waits_full_frame(self, arbiter):
        # t1 owns one slot: worst arrival just misses it -> full frame.
        assert arbiter.worst_case_wait("t1") == 40

    def test_two_slot_requester_waits_half_frame(self, arbiter):
        # t0's slots are evenly spaced (0 and 2 in a 4-frame): gap 2 slots.
        assert arbiter.worst_case_wait("t0") == 20

    def test_uneven_spacing_takes_the_long_gap(self):
        uneven = TDMArbiter(
            resource="bus", slot_table=("a", "a", "b", "b", "b", "b"),
            slot_cycles=5,
        )
        # a's slots: 0,1 -> gaps 1 and 5 slots; worst 5*5=25 cycles.
        assert uneven.worst_case_wait("a") == 25

    def test_no_slot_raises(self, arbiter):
        with pytest.raises(ArchitectureError, match="owns no slot"):
            arbiter.worst_case_wait("t9")

    def test_single_service_slot_access(self, arbiter):
        # wait + one slot of service
        assert arbiter.worst_case_access("t1") == 40 + 10

    def test_multi_slot_service_accumulates_gaps(self, arbiter):
        # t1 needs 2 slots: wait 40, slot (10), full frame to return (40).
        assert arbiter.worst_case_access("t1", service_slots=2) == 90

    def test_dense_requester_fast_service(self, arbiter):
        # t0 needs 2 slots: wait 20, slot 10, gap to other slot 2*10.
        assert arbiter.worst_case_access("t0", service_slots=2) == 50

    def test_bound_is_actually_worst_case(self):
        """Brute-force check: simulate every arrival phase and compare."""
        arbiter = TDMArbiter(
            resource="r", slot_table=("a", "b", "a", "c", "b"),
            slot_cycles=3,
        )
        n = len(arbiter.slot_table)
        for requester in ("a", "b", "c"):
            slots = set(arbiter.slots_of(requester))
            worst_seen = 0
            for arrival in range(arbiter.frame_cycles):
                # Cycle-accurate: find the next slot start strictly after
                # the arrival cycle that belongs to the requester.
                wait = None
                for delta in range(1, 2 * arbiter.frame_cycles + 1):
                    t = arrival + delta
                    if t % arbiter.slot_cycles == 0 and (
                        (t // arbiter.slot_cycles) % n in slots
                    ):
                        wait = t - arrival
                        break
                worst_seen = max(worst_seen, wait)
            assert worst_seen <= arbiter.worst_case_wait(requester)

    def test_service_slots_validation(self, arbiter):
        with pytest.raises(ArchitectureError):
            arbiter.worst_case_access("t0", service_slots=0)


class TestSharedPeripheralAdmission:
    def test_all_sharers_with_slots_pass(self, arbiter):
        validate_shared_peripheral("sdram", ["t0", "t1", "t2"], arbiter)

    def test_slotless_sharer_rejected(self, arbiter):
        with pytest.raises(ArchitectureError, match="unbounded"):
            validate_shared_peripheral("sdram", ["t0", "t3"], arbiter)

    def test_wrong_resource_rejected(self, arbiter):
        with pytest.raises(ArchitectureError, match="serves"):
            validate_shared_peripheral("uart", ["t0"], arbiter)

    def test_describe(self, arbiter):
        text = arbiter.describe()
        assert "sdram" in text and "t0: 2/4" in text
