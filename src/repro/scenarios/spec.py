"""ScenarioSpec: the seed-deterministic identity of a synthetic workload.

A :class:`ScenarioSpec` is a tiny frozen record -- family, seed and a
handful of size/shape knobs -- from which the generator
(:mod:`repro.scenarios.generator`) reproduces the *entire* workload:
the SDF graph, the actor implementations and (via the FlowSpec bridge)
the matching architecture.  Two processes holding equal specs build
byte-identical applications, which is what lets generated scenarios ride
the whole artifact/resume/serving machinery unchanged: the spec is the
content, everything else is derived.

In a FlowSpec document a scenario replaces the MJPEG ``sequence`` of an
app table::

    [app]
    [app.scenario]
    family = "splitjoin"
    seed = 1234
    actors = 7
    max_rate = 3
    wcet_profile = "mixed"
    token_bytes = 16

Specs also persist standalone as ``scenario`` artifacts
(:mod:`repro.artifacts`), so corpora can be stored and round-tripped
like every other result type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.artifacts.schema import check_envelope, register
from repro.exceptions import ReproError

#: The graph families the generator knows how to build.
FAMILIES = ("chain", "splitjoin", "diamond", "cyclic", "mixed")

#: WCET draw ranges per profile: uniform actors, mixed granularity, or
#: a wide spread that stresses the scheduler's slack handling.
WCET_PROFILES: Dict[str, tuple] = {
    "uniform": (20, 40),
    "mixed": (5, 200),
    "wide": (1, 2000),
}

#: Inclusive bounds on the shape knobs (kept deliberately conservative:
#: every spec inside them must map onto the template platforms).
MAX_ACTORS = 64
MAX_RATE = 16
MAX_TOKEN_BYTES = 4096


class ScenarioError(ReproError):
    """Raised for invalid scenario parameters or a generator
    post-condition violation (the typed rejection the fuzz suite
    asserts on)."""


@dataclass(frozen=True)
class ScenarioSpec:
    """Parameters of one synthetic workload.

    Attributes
    ----------
    family:
        Graph family, one of :data:`FAMILIES`.
    seed:
        The determinism root: every random draw of the generator comes
        from ``random.Random(seed)``.
    actors:
        Target actor count (families round it to their natural shape;
        the generated graph never exceeds it by more than a template).
    max_rate:
        Upper bound on rate skew (productions/consumptions/repeats are
        drawn from ``1..max_rate``).
    wcet_profile:
        Key into :data:`WCET_PROFILES`: the execution-time draw range.
    token_bytes:
        Upper bound on per-edge token sizes (bytes, floored at 4).
    name:
        Optional explicit name; :attr:`effective_name` derives
        ``"{family}-s{seed}"`` when empty.
    """

    family: str
    seed: int
    actors: int = 6
    max_rate: int = 3
    wcet_profile: str = "mixed"
    token_bytes: int = 16
    name: str = ""

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ScenarioError(
                f"unknown scenario family {self.family!r}; "
                f"pick from {', '.join(FAMILIES)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ScenarioError(
                f"scenario seed must be a non-negative integer, "
                f"got {self.seed!r}"
            )
        if not 2 <= self.actors <= MAX_ACTORS:
            raise ScenarioError(
                f"scenario actors must be in 2..{MAX_ACTORS}, "
                f"got {self.actors}"
            )
        if not 1 <= self.max_rate <= MAX_RATE:
            raise ScenarioError(
                f"scenario max_rate must be in 1..{MAX_RATE}, "
                f"got {self.max_rate}"
            )
        if self.wcet_profile not in WCET_PROFILES:
            raise ScenarioError(
                f"unknown wcet_profile {self.wcet_profile!r}; pick from "
                f"{', '.join(sorted(WCET_PROFILES))}"
            )
        if not 4 <= self.token_bytes <= MAX_TOKEN_BYTES:
            raise ScenarioError(
                f"scenario token_bytes must be in 4..{MAX_TOKEN_BYTES}, "
                f"got {self.token_bytes}"
            )

    @property
    def effective_name(self) -> str:
        return self.name or f"{self.family}-s{self.seed}"

    # ------------------------------------------------------------------
    # the document form ([app.scenario] table / artifact body)
    # ------------------------------------------------------------------
    def to_table(self) -> Dict[str, Any]:
        """The JSON/TOML table form (inverse of :meth:`from_table`)."""
        table: Dict[str, Any] = {
            "family": self.family,
            "seed": self.seed,
            "actors": self.actors,
            "max_rate": self.max_rate,
            "wcet_profile": self.wcet_profile,
            "token_bytes": self.token_bytes,
        }
        if self.name:
            table["name"] = self.name
        return table

    @classmethod
    def from_table(cls, table: Dict[str, Any]) -> "ScenarioSpec":
        """Parse an ``[app.scenario]`` table; unknown keys are rejected
        so a typo cannot silently change the generated workload."""
        if not isinstance(table, dict):
            raise ScenarioError(
                f"scenario table must be a table/object, "
                f"got {type(table).__name__}"
            )
        data = dict(table)

        def take(key: str, kinds, default=None, required=False):
            if key not in data:
                if required:
                    raise ScenarioError(
                        f"scenario table is missing required key {key!r}"
                    )
                return default
            value = data.pop(key)
            if isinstance(value, bool) or not isinstance(value, kinds):
                raise ScenarioError(
                    f"scenario key {key!r} must be "
                    f"{kinds.__name__}, got {value!r}"
                )
            return value

        spec = cls(
            family=take("family", str, required=True),
            seed=take("seed", int, required=True),
            actors=take("actors", int, default=6),
            max_rate=take("max_rate", int, default=3),
            wcet_profile=take("wcet_profile", str, default="mixed"),
            token_bytes=take("token_bytes", int, default=16),
            name=take("name", str, default=""),
        )
        if data:
            raise ScenarioError(
                f"unknown scenario key(s): {sorted(data)}"
            )
        return spec

    # ------------------------------------------------------------------
    # artifact persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        from repro.artifacts.schema import from_payload

        check_envelope(payload, "scenario")
        return from_payload(payload)


def _encode_scenario(spec: ScenarioSpec) -> Dict[str, Any]:
    body = spec.to_table()
    body.setdefault("name", "")
    return body


def _decode_scenario(payload: Dict[str, Any]) -> ScenarioSpec:
    table = {
        key: value
        for key, value in payload.items()
        if key not in ("schema_version", "kind")
    }
    if not table.get("name"):
        table.pop("name", None)
    return ScenarioSpec.from_table(table)


register("scenario", ScenarioSpec, _encode_scenario, _decode_scenario)
