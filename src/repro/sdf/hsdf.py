"""SDF to homogeneous SDF (HSDF) conversion.

The HSDF expansion creates ``q[a]`` copies of every actor ``a`` (``q`` the
repetition vector) and unit-rate edges expressing the exact firing-level
dependencies of the original multirate graph [Sriram & Bhattacharyya].  On
the HSDF graph, maximum-cycle-mean analysis (:mod:`repro.sdf.mcm`) yields
the self-timed throughput in closed form, which this library uses as an
independent cross-check of the state-space analysis.

Copy ``i`` of actor ``a`` is named ``f"{a}#{i}"`` and carries
``group=a`` so results can be folded back onto the original actors.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def hsdf_copy_name(actor: str, index: int) -> str:
    """Name of the *index*-th HSDF copy of *actor*."""
    return f"{actor}#{index}"


def to_hsdf(graph: SDFGraph, sequential_actors: bool = True) -> SDFGraph:
    """Expand ``graph`` into an equivalent HSDF graph.

    Parameters
    ----------
    sequential_actors:
        When True (default), the copies of each actor are chained into a
        cycle carrying one initial token, which forbids overlapping firings
        of the same actor -- the semantics of a software actor bound to a
        single processor (auto-concurrency 1).  Set False for the
        theoretical unlimited-concurrency semantics.

    The expansion keeps, for every (source copy, destination copy) pair, the
    *smallest* token delay implied by any transferred token; smaller delays
    subsume larger ones for timing analysis.
    """
    q = repetition_vector(graph)
    hsdf = SDFGraph(f"{graph.name}_hsdf")

    for actor in graph:
        for i in range(q[actor.name]):
            hsdf.add_actor(
                hsdf_copy_name(actor.name, i),
                execution_time=actor.execution_time,
                group=actor.name,
                concurrency=actor.concurrency,
            )

    # (src_copy, dst_copy) -> minimal delay in iterations
    delays: Dict[Tuple[str, str], int] = {}

    for edge in graph.edges:
        p = edge.production
        c = edge.consumption
        d = edge.initial_tokens
        q_src = q[edge.src]
        q_dst = q[edge.dst]
        for j in range(q_dst):  # destination firing within the iteration
            for l in range(c):  # each consumed token
                k = j * c + l  # global token index in FIFO order
                i_global = (k - d) // p  # producing global firing (floor div)
                src_copy = hsdf_copy_name(edge.src, i_global % q_src)
                dst_copy = hsdf_copy_name(edge.dst, j)
                # iteration distance between consumer (iteration 0) and
                # producer (iteration floor(i_global / q_src))
                delta = -(i_global // q_src)
                key = (src_copy, dst_copy)
                if key not in delays or delta < delays[key]:
                    delays[key] = delta

    if sequential_actors:
        for actor in graph:
            n = q[actor.name]
            cap = actor.concurrency if actor.concurrency is not None else 1
            for i in range(n):
                src_copy = hsdf_copy_name(actor.name, i)
                dst_copy = hsdf_copy_name(actor.name, (i + 1) % n)
                # `cap` tokens on the copy cycle admit `cap` overlapping
                # firings of the actor (auto-concurrency `cap`).
                delta = cap if i == n - 1 else 0
                key = (src_copy, dst_copy)
                if key not in delays or delta < delays[key]:
                    delays[key] = delta

    for index, ((src, dst), delta) in enumerate(sorted(delays.items())):
        assert delta >= 0, (
            f"negative HSDF delay {delta} on {src}->{dst}: conversion bug"
        )
        hsdf.add_edge(
            f"h{index}_{src}_{dst}",
            src,
            dst,
            production=1,
            consumption=1,
            initial_tokens=delta,
        )
    return hsdf
