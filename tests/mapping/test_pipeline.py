"""Tests for the pluggable mapping pipeline: registry, strategies,
backward compatibility of the thin ``map_application`` wrapper."""

import pytest

from repro.arch import architecture_from_template
from repro.exceptions import MappingError
from repro.mapping import (
    MappingPipeline,
    StrategyTuple,
    map_application,
    register_strategy,
    registered,
    resolve,
)
from repro.mapping.pipeline import (
    DEFAULT_STRATEGIES,
    ExponentialBufferGrowth,
    LinearBufferGrowth,
    _spiral_tile_order,
)


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert set(registered("binding")) >= {"greedy", "spiral", "ga"}
        assert "xy" in registered("routing")
        assert set(registered("buffer")) >= {"linear", "exponential"}
        assert "static-order" in registered("scheduling")

    def test_unknown_name_lists_registered_options(self):
        with pytest.raises(ValueError) as excinfo:
            resolve("binding", "quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        for name in registered("binding"):
            assert name in message

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            resolve("placement", "greedy")
        with pytest.raises(ValueError, match="unknown stage kind"):
            registered("placement")

    def test_duplicate_registration_raises(self):
        @register_strategy("buffer", "test-dup-probe")
        class Probe:
            def allocate(self, app, channels):
                pass

            def grow(self, channels, round_index):
                pass

        try:
            with pytest.raises(ValueError, match="duplicate registration"):
                register_strategy("buffer", "test-dup-probe")(Probe)
        finally:
            from repro.mapping.pipeline import _REGISTRY

            del _REGISTRY["buffer"]["test-dup-probe"]

    def test_decorator_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            register_strategy("nonsense", "x")

    def test_registered_classes_carry_identity(self):
        strategy = resolve("binding", "spiral")
        assert strategy.kind == "binding"
        assert strategy.name == "spiral"


class TestBackwardCompatibility:
    def test_wrapper_matches_explicit_default_pipeline(self, small_app):
        arch = architecture_from_template(3)
        legacy = map_application(small_app, arch)
        piped = MappingPipeline().run(small_app, arch)
        assert legacy.guaranteed_throughput == piped.guaranteed_throughput
        assert legacy.mapping.actor_binding == piped.mapping.actor_binding
        assert legacy.mapping.static_orders == piped.mapping.static_orders
        assert legacy.buffer_growth_rounds == piped.buffer_growth_rounds
        for name, channel in legacy.mapping.channels.items():
            other = piped.mapping.channels[name]
            assert (channel.capacity, channel.alpha_src,
                    channel.alpha_dst) == (
                other.capacity, other.alpha_src, other.alpha_dst
            )

    def test_default_strategy_tuple_is_default(self):
        assert MappingPipeline().strategies == DEFAULT_STRATEGIES
        assert DEFAULT_STRATEGIES.is_default
        assert DEFAULT_STRATEGIES.label_suffix() == ""

    def test_best_snapshot_isolated_from_later_growth(self, chain_app):
        """The saved-best channels must not alias the live ones (the
        historic ``_copy_channel`` shared the parameters object)."""
        arch = architecture_from_template(3)
        result = map_application(chain_app, arch)
        inter = [
            c for c in result.mapping.channels.values()
            if not c.intra_tile
        ]
        assert inter
        assert all(c.parameters is not None for c in inter)


class TestSpiralBinding:
    def test_spiral_completes_and_is_valid(self, small_app):
        arch = architecture_from_template(3)
        result = map_application(small_app, arch, binding="spiral")
        assert result.guaranteed_throughput > 0
        assert set(result.mapping.actor_binding) == {"A", "B", "C"}

    def test_spiral_respects_pins(self, chain_app):
        arch = architecture_from_template(3)
        result = map_application(
            chain_app, arch, binding="spiral", fixed={"R": "tile2"}
        )
        assert result.mapping.actor_binding["R"] == "tile2"

    def test_spiral_infeasible_pin_raises(self, chain_app):
        arch = architecture_from_template(2)
        with pytest.raises(MappingError, match="pinned"):
            map_application(
                chain_app, arch, binding="spiral",
                fixed={"P": "tile9"},
            )

    def test_spiral_tile_order_starts_at_master(self):
        fsl = architecture_from_template(4, "fsl")
        assert _spiral_tile_order(fsl)[0] == "tile0"
        noc = architecture_from_template(5, "noc")
        order = _spiral_tile_order(noc)
        assert order[0] == "tile0"
        distances = [
            noc.interconnect.hop_distance("tile0", t) for t in order
        ]
        assert distances == sorted(distances)


class TestGABinding:
    def test_deterministic_under_fixed_seed(self, small_app):
        arch = architecture_from_template(3)
        first = map_application(
            small_app, arch, binding="ga", seed=11
        ).mapping.actor_binding
        second = map_application(
            small_app, arch, binding="ga", seed=11
        ).mapping.actor_binding
        assert first == second

    def test_unseeded_defaults_to_seed_zero(self, small_app):
        arch = architecture_from_template(3)
        unseeded = map_application(
            small_app, arch, binding="ga"
        ).mapping.actor_binding
        zero = map_application(
            small_app, arch, binding="ga", seed=0
        ).mapping.actor_binding
        assert unseeded == zero

    def test_ga_respects_pins(self, chain_app):
        arch = architecture_from_template(3)
        result = map_application(
            chain_app, arch, binding="ga", seed=5, fixed={"P": "tile1"}
        )
        assert result.mapping.actor_binding["P"] == "tile1"

    def test_ga_produces_runnable_mapping(self, chain_app):
        arch = architecture_from_template(3)
        result = map_application(chain_app, arch, binding="ga", seed=1)
        assert result.guaranteed_throughput > 0
        assert set(result.mapping.actor_binding) == {"P", "Q", "R"}


class TestBufferPolicies:
    def _channels(self, app):
        from repro.mapping import allocate_buffers, bind_actors, \
            route_channels

        arch = architecture_from_template(2)
        binding, _ = bind_actors(app, arch)
        channels = route_channels(app, arch, binding)
        allocate_buffers(app, channels)
        return channels

    def test_linear_growth_adds_one_per_round(self, chain_app):
        channels = self._channels(chain_app)
        before = {
            n: c.total_buffer_tokens() for n, c in channels.items()
        }
        policy = LinearBufferGrowth()
        policy.grow(channels, 0)
        policy.grow(channels, 1)
        for name, channel in channels.items():
            per_round = 2 if not channel.intra_tile else 1
            assert channel.total_buffer_tokens() == \
                before[name] + 2 * per_round

    def test_exponential_outgrows_linear(self, chain_app):
        linear = self._channels(chain_app)
        exponential = self._channels(chain_app)
        for round_index in range(4):
            LinearBufferGrowth().grow(linear, round_index)
            ExponentialBufferGrowth().grow(exponential, round_index)
        for name in linear:
            assert exponential[name].total_buffer_tokens() > \
                linear[name].total_buffer_tokens()

    def test_exponential_step_is_capped(self, chain_app):
        channels = self._channels(chain_app)
        before = {
            n: c.total_buffer_tokens() for n, c in channels.items()
        }
        ExponentialBufferGrowth().grow(channels, 99)
        cap = ExponentialBufferGrowth.max_step
        for name, channel in channels.items():
            per_round = 2 if not channel.intra_tile else 1
            assert channel.total_buffer_tokens() == \
                before[name] + cap * per_round

    def test_exponential_flow_still_meets_constraint(self, chain_app):
        from fractions import Fraction

        arch = architecture_from_template(3)
        result = map_application(
            chain_app, arch, constraint=Fraction(1, 1200),
            buffer_policy="exponential",
        )
        assert result.constraint_met


class TestStrategyTuple:
    def test_cache_tokens_distinguish_strategies(self):
        default = StrategyTuple()
        spiral = StrategyTuple(binding="spiral")
        seeded = StrategyTuple(binding="ga", seed=3)
        reseeded = StrategyTuple(binding="ga", seed=4)
        tokens = {
            t.cache_token() for t in (default, spiral, seeded, reseeded)
        }
        assert len(tokens) == 4

    def test_seed_ignored_for_deterministic_binders(self):
        # greedy/spiral ignore the seed, so it must not split cache
        # entries or change labels
        assert StrategyTuple(seed=7).cache_token() == \
            StrategyTuple().cache_token()
        assert StrategyTuple(seed=7).is_default
        assert StrategyTuple(seed=7).label_suffix() == ""
        assert StrategyTuple(binding="spiral", seed=7).cache_token() == \
            StrategyTuple(binding="spiral").cache_token()

    def test_unseeded_ga_canonicalizes_to_seed_zero(self):
        # the GA runs seed=None as seed 0; identical runs share an entry
        assert StrategyTuple(binding="ga").cache_token() == \
            StrategyTuple(binding="ga", seed=0).cache_token()
        assert StrategyTuple(binding="ga", seed=0).cache_token() != \
            StrategyTuple(binding="ga", seed=1).cache_token()

    def test_label_suffix_names_the_deviation(self):
        assert StrategyTuple(binding="spiral").label_suffix() == \
            "#binding=spiral"
        assert "seed=7" in StrategyTuple(
            binding="ga", seed=7
        ).label_suffix()

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="registered"):
            StrategyTuple(binding="nope").validate()

    def test_build_pipeline_round_trips(self):
        tuple_ = StrategyTuple(
            binding="spiral", buffer_policy="exponential", seed=9
        )
        assert tuple_.build_pipeline().strategies == tuple_

    def test_pipeline_accepts_instances(self, small_app):
        arch = architecture_from_template(2)
        pipeline = MappingPipeline(
            binding=resolve("binding", "greedy"),
            buffer_policy=ExponentialBufferGrowth(),
        )
        assert pipeline.strategies.binding == "greedy"
        assert pipeline.strategies.buffer_policy == "exponential"
        result = pipeline.run(small_app, arch)
        assert result.guaranteed_throughput > 0
