"""8x8 DCT, inverse DCT and (de)quantization.

The forward transform (encoder side) and the reference decoder use the
orthonormal DCT-II matrix in floating point; the *actor* IDCT uses the
same matrix but with the fixed-point rounding a Microblaze software
implementation would apply, so actor output and reference output agree to
within +-1 per sample (verified by tests).
"""

from __future__ import annotations

import numpy as np

_BASIS = np.zeros((8, 8))
for _k in range(8):
    for _n in range(8):
        _BASIS[_k, _n] = np.cos(np.pi * (_n + 0.5) * _k / 8.0)
_BASIS[0, :] *= np.sqrt(1.0 / 8.0)
_BASIS[1:, :] *= np.sqrt(2.0 / 8.0)


def forward_dct(block: np.ndarray) -> np.ndarray:
    """DCT-II of an 8x8 spatial block (level-shifted samples)."""
    if block.shape != (8, 8):
        raise ValueError(f"expected 8x8 block, got {block.shape}")
    return _BASIS @ block.astype(np.float64) @ _BASIS.T


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse DCT returning float64 spatial samples."""
    if coefficients.shape != (8, 8):
        raise ValueError(f"expected 8x8 block, got {coefficients.shape}")
    return _BASIS.T @ coefficients.astype(np.float64) @ _BASIS


def quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Round-to-nearest quantization to int32."""
    return np.round(coefficients / table).astype(np.int32)


def dequantize(levels: np.ndarray, table: np.ndarray) -> np.ndarray:
    return (levels * table).astype(np.int32)


def idct_samples(coefficients: np.ndarray) -> np.ndarray:
    """Actor-grade IDCT: dequantized coefficients -> uint8 samples.

    Adds the +128 level shift and clamps, with round-half-away rounding
    (matching integer arithmetic with a rounding constant).
    """
    spatial = inverse_dct(coefficients)
    shifted = np.floor(spatial + 128.0 + 0.5)
    return np.clip(shifted, 0, 255).astype(np.uint8)
