"""Tests for JPEG tables and bit-level I/O."""

import numpy as np
import pytest

from repro.exceptions import BitstreamError
from repro.mjpeg.bitstream import BitReader, BitWriter
from repro.mjpeg.tables import (
    AC_TABLE,
    DC_TABLE,
    HuffmanTable,
    INVERSE_ZIGZAG,
    ZIGZAG,
    decode_magnitude,
    encode_magnitude,
    magnitude_category,
    scaled_quant_table,
    BASE_LUMA_QUANT,
)


class TestZigzag:
    def test_is_permutation(self):
        assert sorted(ZIGZAG) == list(range(64))

    def test_inverse(self):
        for natural in range(64):
            assert ZIGZAG[INVERSE_ZIGZAG[natural]] == natural

    def test_known_prefix(self):
        # The classic start of the zig-zag walk.
        assert ZIGZAG[:6] == (0, 1, 8, 16, 9, 2)


class TestQuantScaling:
    def test_quality_50_is_base(self):
        table = scaled_quant_table(BASE_LUMA_QUANT, 50)
        assert np.array_equal(table, BASE_LUMA_QUANT)

    def test_higher_quality_smaller_divisors(self):
        q75 = scaled_quant_table(BASE_LUMA_QUANT, 75)
        q25 = scaled_quant_table(BASE_LUMA_QUANT, 25)
        assert (q75 <= q25).all()
        assert q75.min() >= 1

    def test_quality_100_all_near_one(self):
        q100 = scaled_quant_table(BASE_LUMA_QUANT, 100)
        assert q100.max() <= 2

    def test_invalid_quality(self):
        with pytest.raises(BitstreamError):
            scaled_quant_table(BASE_LUMA_QUANT, 0)
        with pytest.raises(BitstreamError):
            scaled_quant_table(BASE_LUMA_QUANT, 101)


class TestHuffman:
    def test_dc_table_has_12_categories(self):
        assert len(DC_TABLE.encode_map) == 12

    def test_ac_table_has_162_symbols(self):
        assert len(AC_TABLE.encode_map) == 162

    def test_codes_are_prefix_free(self):
        for table in (DC_TABLE, AC_TABLE):
            codes = [
                (code, length)
                for (length, code) in table.decode_map.keys()
            ]
            as_strings = [format(c, f"0{l}b") for (l, c) in
                          table.decode_map.keys()]
            for a in as_strings:
                for b in as_strings:
                    if a is not b:
                        assert not b.startswith(a) or a == b

    def test_roundtrip_via_decode_map(self):
        for symbol, (code, length) in AC_TABLE.encode_map.items():
            assert AC_TABLE.decode_map[(length, code)] == symbol

    def test_unknown_symbol_rejected(self):
        with pytest.raises(BitstreamError):
            DC_TABLE.encode(99)

    def test_bits_huffval_mismatch_rejected(self):
        with pytest.raises(BitstreamError):
            HuffmanTable((1,) + (0,) * 15, (1, 2))


class TestMagnitude:
    @pytest.mark.parametrize("value,category", [
        (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2),
        (255, 8), (-255, 8), (1023, 10), (2047, 11),
    ])
    def test_category(self, value, category):
        assert magnitude_category(value) == category

    @pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 127, -127, 1000])
    def test_roundtrip(self, value):
        category = magnitude_category(value)
        bits = encode_magnitude(value, category)
        assert decode_magnitude(bits, category) == value


class TestBitIO:
    def test_roundtrip_various_widths(self):
        writer = BitWriter()
        values = [(1, 1), (0, 1), (5, 3), (255, 8), (1023, 10), (0, 4)]
        for value, bits in values:
            writer.write(value, bits)
        writer.align()
        reader = BitReader(writer.getvalue())
        for value, bits in values:
            assert reader.read(bits) == value

    def test_align_pads_with_ones(self):
        writer = BitWriter()
        writer.write(0, 1)
        writer.align()
        assert writer.getvalue() == bytes([0b01111111])

    def test_unflushed_getvalue_rejected(self):
        writer = BitWriter()
        writer.write(1, 3)
        with pytest.raises(BitstreamError, match="unflushed"):
            writer.getvalue()

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write(4, 2)

    def test_reader_overrun_detected(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(BitstreamError, match="exhausted"):
            reader.read(1)

    def test_reader_counts_bits(self):
        reader = BitReader(b"\xab\xcd")
        reader.read(4)
        reader.read(7)
        assert reader.bits_consumed == 11

    def test_reader_seek_and_align(self):
        reader = BitReader(b"\xab\xcd")
        reader.read(3)
        reader.align()
        assert reader.position_bits == 8
        reader.seek_bits(0)
        assert reader.read(8) == 0xAB

    def test_msb_first_order(self):
        writer = BitWriter()
        writer.write(0b1, 1)
        writer.write(0b0, 1)
        writer.write(0b111111, 6)
        writer.align()
        assert writer.getvalue() == bytes([0b10111111])
