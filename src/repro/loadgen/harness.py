"""The load-test harness: fire a traffic plan at live replicas.

:func:`run_load_test` drives one or more ``repro serve`` instances
through :class:`~repro.service.client.FlowServiceClient`: it snapshots
``/v1/healthz`` on every replica, fires the seeded open-loop plan from
:mod:`repro.loadgen.traffic` off a thread pool (each request waits for
its arrival offset, POSTs, then polls to completion), snapshots health
again, and folds everything into a :class:`LoadTestReport` -- sustained
RPS, nearest-rank p50/p95/p99 latency, coalescing and artifact
hit-rates, and per-replica counter deltas.

:class:`LoadTestGates` turns a report into a pass/fail CI verdict, and
:func:`write_bench_report` emits the canonical ``BENCH_service.json``
(same ``{"bench", "unit", "results"}`` shape as the other benchmark
artifacts under ``benchmarks/results/``).
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.artifacts.schema import canonical_json
from repro.loadgen.traffic import LoadgenError, PlannedRequest, build_traffic
from repro.service.client import FlowServiceClient, ServiceClientError

#: Job states a load-test request treats as terminal.
_TERMINAL = ("done", "failed")

#: Health counters whose before/after deltas the report keeps.
_COUNTER_KEYS = (
    "submitted", "coalesced", "artifact_hits", "computed", "failed",
)


@dataclass(frozen=True)
class LoadTestConfig:
    """Everything a load test needs; seeded, so runs are replayable."""

    urls: Tuple[str, ...]
    family: str = "mixed"
    unique: int = 4
    requests: int = 40
    rps: float = 20.0
    seed: int = 7
    actors: Optional[int] = None
    #: Per-request completion budget (submit + poll), in seconds.
    timeout: float = 120.0
    #: Cap on concurrently in-flight requests; the open-loop schedule
    #: degrades only when more than this many overlap.
    max_inflight: int = 64

    def __post_init__(self) -> None:
        if not self.urls:
            raise LoadgenError("at least one replica URL is required")
        if self.max_inflight < 1:
            raise LoadgenError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one planned request."""

    index: int
    url: str
    spec_name: str
    #: ``done`` / ``failed`` (flow error) / ``error`` (transport, 429,
    #: or timeout).
    status: str
    offset: float
    latency: float
    #: Seconds after test start when the request finished (any status).
    completed_at: float = 0.0
    source: Optional[str] = None
    coalesced: bool = False
    error: Optional[str] = None


@dataclass(frozen=True)
class ReplicaDelta:
    """One replica's identity and counter movement over the test."""

    url: str
    replica: str
    backend: str
    workers: int
    delta: Dict[str, int]


@dataclass
class LoadTestReport:
    """The folded result of one load test."""

    config: LoadTestConfig
    outcomes: List[RequestOutcome]
    replicas: List[ReplicaDelta]
    #: Wall-clock seconds from first arrival to last completion.
    duration: float
    offered_rps: float = 0.0
    sustained_rps: float = 0.0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    completed: int = 0
    flow_failures: int = 0
    transport_errors: int = 0
    coalesced_hits: int = 0
    artifact_hits: int = 0
    computed: int = 0

    @property
    def failures(self) -> int:
        """Requests that did not complete with a flow response."""
        return self.flow_failures + self.transport_errors

    @property
    def artifact_hit_rate(self) -> float:
        return self.artifact_hits / max(1, self.completed)

    @property
    def coalesced_rate(self) -> float:
        return self.coalesced_hits / max(1, self.config.requests)

    def to_payload(self) -> Dict[str, Any]:
        """The canonical ``BENCH_service.json`` document."""
        config = self.config
        return {
            "bench": (
                "flow-service load test: seeded open-loop traffic vs "
                f"{len(config.urls)} replica(s)"
            ),
            "unit": "seconds",
            "config": {
                "replicas": len(config.urls),
                "family": config.family,
                "unique": config.unique,
                "requests": config.requests,
                "offered_rps": config.rps,
                "seed": config.seed,
            },
            "results": {
                "duration_s": self.duration,
                "offered_rps": self.offered_rps,
                "sustained_rps": self.sustained_rps,
                "p50_ms": self.latency_ms.get("p50"),
                "p95_ms": self.latency_ms.get("p95"),
                "p99_ms": self.latency_ms.get("p99"),
                "completed": self.completed,
                "flow_failures": self.flow_failures,
                "transport_errors": self.transport_errors,
                "coalesced_hits": self.coalesced_hits,
                "coalesced_rate": self.coalesced_rate,
                "artifact_hits": self.artifact_hits,
                "artifact_hit_rate": self.artifact_hit_rate,
                "computed": self.computed,
                "replicas": [
                    {
                        "url": replica.url,
                        "replica": replica.replica,
                        "backend": replica.backend,
                        "workers": replica.workers,
                        "delta": dict(replica.delta),
                    }
                    for replica in self.replicas
                ],
            },
        }

    def summary(self) -> str:
        """A terse human-readable digest (the CLI's stdout)."""
        lat = self.latency_ms
        lines = [
            f"requests    {self.config.requests} "
            f"({self.completed} completed, {self.failures} failed)",
            f"throughput  offered {self.offered_rps:.1f} rps, "
            f"sustained {self.sustained_rps:.1f} rps",
            f"latency     p50 {lat.get('p50', 0.0):.1f} ms, "
            f"p95 {lat.get('p95', 0.0):.1f} ms, "
            f"p99 {lat.get('p99', 0.0):.1f} ms",
            f"reuse       {self.coalesced_hits} coalesced, "
            f"{self.artifact_hits} artifact hits, "
            f"{self.computed} computed",
        ]
        for replica in self.replicas:
            delta = replica.delta
            lines.append(
                f"replica     {replica.replica} ({replica.backend} x"
                f"{replica.workers}, {replica.url}): "
                + ", ".join(
                    f"{key} +{delta.get(key, 0)}" for key in _COUNTER_KEYS
                )
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class LoadTestGates:
    """CI pass/fail thresholds over a :class:`LoadTestReport`."""

    p99_budget_ms: Optional[float] = None
    min_coalesced: Optional[int] = None
    min_rps: Optional[float] = None
    max_failures: int = 0

    def violations(self, report: LoadTestReport) -> List[str]:
        """Every gate the report misses (empty means pass)."""
        found: List[str] = []
        p99 = report.latency_ms.get("p99")
        if self.p99_budget_ms is not None:
            if p99 is None:
                found.append("p99 gate set but no request completed")
            elif p99 > self.p99_budget_ms:
                found.append(
                    f"p99 latency {p99:.1f} ms exceeds the "
                    f"{self.p99_budget_ms:.1f} ms budget"
                )
        if (
            self.min_coalesced is not None
            and report.coalesced_hits < self.min_coalesced
        ):
            found.append(
                f"{report.coalesced_hits} coalesced hit(s), "
                f"need >= {self.min_coalesced}"
            )
        if self.min_rps is not None and report.sustained_rps < self.min_rps:
            found.append(
                f"sustained {report.sustained_rps:.1f} rps below the "
                f"{self.min_rps:.1f} rps floor"
            )
        if report.failures > self.max_failures:
            found.append(
                f"{report.failures} failed request(s), "
                f"allowed {self.max_failures}"
            )
        return found


def percentile_ms(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``latencies`` (seconds), in ms."""
    if not latencies:
        raise LoadgenError("no latencies to take a percentile of")
    if not 0 < q <= 100:
        raise LoadgenError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1] * 1000.0


def run_load_test(config: LoadTestConfig) -> LoadTestReport:
    """Fire the seeded plan at the configured replicas and fold."""
    plan = build_traffic(
        family=config.family,
        unique=config.unique,
        requests=config.requests,
        rps=config.rps,
        seed=config.seed,
        replicas=len(config.urls),
        actors=config.actors,
    )
    clients = [
        FlowServiceClient(url, timeout=config.timeout)
        for url in config.urls
    ]
    before = [client.health() for client in clients]

    start = time.monotonic()

    def fire(request: PlannedRequest) -> RequestOutcome:
        client = clients[request.replica_index]
        delay = start + request.offset - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        begun = time.monotonic()
        status, source, error = "error", None, None
        coalesced = False
        try:
            view = client.submit(request.document)
            coalesced = bool(view.get("coalesced"))
            if view["status"] not in _TERMINAL:
                remaining = max(
                    0.1, config.timeout - (time.monotonic() - begun)
                )
                view = client.wait(view["id"], timeout=remaining)
            status = view["status"]
            source = view.get("source")
            error = view.get("error")
        except ServiceClientError as exc:
            error = str(exc)
        ended = time.monotonic()
        return RequestOutcome(
            index=request.index,
            url=client.base_url,
            spec_name=request.spec_name,
            status=status,
            offset=request.offset,
            latency=ended - begun,
            completed_at=ended - start,
            source=source,
            coalesced=coalesced,
            error=error,
        )

    workers = min(config.max_inflight, len(plan))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="loadgen"
    ) as pool:
        outcomes = list(pool.map(fire, plan))
    after = [client.health() for client in clients]

    replicas = [
        ReplicaDelta(
            url=clients[i].base_url,
            replica=str(post.get("replica", "")),
            backend=str(post.get("backend", "")),
            workers=int(post.get("worker_slots", 0)),
            delta={
                key: int(
                    post.get("counters", {}).get(key, 0)
                    - before[i].get("counters", {}).get(key, 0)
                )
                for key in _COUNTER_KEYS
            },
        )
        for i, post in enumerate(after)
    ]

    done = [o for o in outcomes if o.status == "done"]
    duration = max(
        [o.completed_at for o in done], default=1e-9
    )
    duration = max(duration, 1e-9)
    latency_ms: Dict[str, float] = {}
    if done:
        lat = [o.latency for o in done]
        latency_ms = {
            "p50": percentile_ms(lat, 50),
            "p95": percentile_ms(lat, 95),
            "p99": percentile_ms(lat, 99),
        }
    return LoadTestReport(
        config=config,
        outcomes=outcomes,
        replicas=replicas,
        duration=duration,
        offered_rps=config.rps,
        sustained_rps=len(done) / duration,
        latency_ms=latency_ms,
        completed=len(done),
        flow_failures=sum(1 for o in outcomes if o.status == "failed"),
        transport_errors=sum(1 for o in outcomes if o.status == "error"),
        coalesced_hits=sum(
            replica.delta.get("coalesced", 0) for replica in replicas
        ),
        artifact_hits=sum(1 for o in done if o.source == "artifacts"),
        computed=sum(1 for o in done if o.source == "computed"),
    )


def write_bench_report(
    report: LoadTestReport, path: Union[str, Path]
) -> Path:
    """Write the canonical ``BENCH_service.json`` document."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        canonical_json(report.to_payload()) + "\n", encoding="utf-8"
    )
    return target
