"""Figure 6a: measured vs. predicted worst-case throughput, FSL interconnect.

Regenerates the left plot of Fig. 6: for the synthetic sequence and the
five-test-sequence set, the worst-case analysis bound, the expected
throughput (analysis with measured execution times) and the measured
throughput of the running platform, on the 5-tile point-to-point FSL
MPSoC.

Shape checks (the paper's claims):
* the worst-case bound is conservative for every workload;
* the synthetic sequence runs closest to the bound, the structured test
  set well above it;
* expected tracks measured tightly for the low-variation synthetic input
  (the "<1%" margin; we allow a few % for transient effects).
"""

from benchmarks.conftest import write_results
from repro.flow import format_throughput_table


def test_figure6a_fsl(benchmark, figure6_runner):
    comparisons = benchmark.pedantic(
        lambda: figure6_runner("fsl"), rounds=1, iterations=1
    )

    table = format_throughput_table(comparisons, unit_name="MCU/Mcycle")
    path = write_results("fig6a_fsl.txt", table)
    print("\n" + table + f"\n-> {path}")

    by_name = {c.workload: c for c in comparisons}

    # Conservativeness: the guarantee holds for every input.
    for comparison in comparisons:
        assert comparison.conservative(), (
            f"worst-case bound violated on {comparison.workload!r}"
        )

    # The synthetic sequence sits closest to the worst-case line.
    synthetic = by_name["synthetic"]
    synthetic_headroom = synthetic.measured / synthetic.worst_case
    for name, comparison in by_name.items():
        if name == "synthetic":
            continue
        assert comparison.measured / comparison.worst_case >= (
            synthetic_headroom
        ), f"{name} runs closer to the bound than the synthetic input"

    # The structured test set is substantially faster than worst case.
    for name in ("gradient", "photo", "checkerboard", "text", "blobs"):
        assert by_name[name].measured > 1.5 * by_name[name].worst_case

    # Expected tracks measured tightly when execution times vary little:
    # within a few % for the synthetic noise (residual variance comes from
    # quantization still zeroing some coefficients) and within the paper's
    # <1% for the constant-time gradient content.
    assert synthetic.expected_margin() < 0.06
    assert by_name["gradient"].expected_margin() < 0.01
