"""System-level integration tests: the full MJPEG flow, end to end.

These are the repository's strongest claims, executed:

* the platform simulator decodes frames **bit-identically** to the
  whole-frame reference decoder (functional correctness through the
  mapped, scheduled, credit-controlled pipeline);
* the throughput guarantee is conservative on both interconnects;
* CA-equipped platforms run and never lower the guarantee;
* long runs (stream wrap-around) behave.
"""

import numpy as np
import pytest

from repro.arch import architecture_from_template
from repro.flow import DesignFlow
from repro.mamps import synthesize
from repro.mapping import map_application
from repro.mjpeg import (
    build_mjpeg_application,
    encode_sequence,
    synthetic_sequence,
    test_set_sequences as build_test_set,
)
from repro.mjpeg.reference import decode_sequence


@pytest.fixture(scope="module")
def gradient_encoded():
    frames = build_test_set(n_frames=2)["gradient"]
    return encode_sequence(frames, quality=75)


@pytest.fixture(scope="module")
def blobs_encoded():
    frames = build_test_set(n_frames=2)["blobs"]
    return encode_sequence(frames, quality=75, h=4, v=2)  # 10-block MCUs


class TestBitExactness:
    @pytest.mark.parametrize("interconnect", ["fsl", "noc"])
    def test_platform_frames_match_reference(
        self, gradient_encoded, interconnect
    ):
        app = build_mjpeg_application(gradient_encoded)
        arch = architecture_from_template(5, interconnect)
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        simulator = synthesize(app, arch, result)
        total = gradient_encoded.total_mcus
        simulator.run_iterations(total)

        platform_frames = simulator._states["Raster"]["frames"]
        reference_frames = decode_sequence(gradient_encoded)
        assert len(platform_frames) >= len(reference_frames)
        for platform, reference in zip(platform_frames, reference_frames):
            assert np.array_equal(platform, reference)

    def test_ten_block_stream_matches_reference(self, blobs_encoded):
        app = build_mjpeg_application(blobs_encoded)
        arch = architecture_from_template(5, "fsl")
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        simulator = synthesize(app, arch, result)
        simulator.run_iterations(blobs_encoded.total_mcus)
        platform_frames = simulator._states["Raster"]["frames"]
        reference_frames = decode_sequence(blobs_encoded)
        for platform, reference in zip(platform_frames, reference_frames):
            assert np.array_equal(platform, reference)

    def test_wraparound_repeats_frames(self, gradient_encoded):
        """Decoding past the stream end loops the sequence; the repeated
        pass must produce the same frames again."""
        app = build_mjpeg_application(gradient_encoded)
        arch = architecture_from_template(3, "fsl")
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        simulator = synthesize(app, arch, result)
        simulator.run_iterations(2 * gradient_encoded.total_mcus)
        frames = simulator._states["Raster"]["frames"]
        n = gradient_encoded.n_frames
        assert len(frames) >= 2 * n
        for first_pass, second_pass in zip(frames[:n], frames[n:2 * n]):
            assert np.array_equal(first_pass, second_pass)


class TestConservativeness:
    @pytest.mark.parametrize("interconnect", ["fsl", "noc"])
    def test_guarantee_holds(self, gradient_encoded, interconnect):
        app = build_mjpeg_application(gradient_encoded)
        arch = architecture_from_template(5, interconnect)
        flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
        result = flow.run(iterations=16, warmup_iterations=3)
        assert result.measured_throughput >= result.guaranteed_throughput

    def test_guarantee_holds_on_synthetic(self):
        encoded = encode_sequence(
            synthetic_sequence(n_frames=1), quality=95, h=4, v=2
        )
        app = build_mjpeg_application(encoded)
        arch = architecture_from_template(5, "fsl")
        flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
        result = flow.run(iterations=12, warmup_iterations=2)
        assert result.measured_throughput >= result.guaranteed_throughput
        # Synthetic noise runs close to the bound.
        headroom = float(
            result.measured_throughput / result.guaranteed_throughput
        )
        assert headroom < 1.6

    def test_fewer_tiles_never_raise_guarantee(self, gradient_encoded):
        app = build_mjpeg_application(gradient_encoded)
        guarantees = []
        for tiles in (1, 3, 5):
            arch = architecture_from_template(tiles, "fsl")
            result = map_application(app, arch, fixed={"VLD": "tile0"})
            guarantees.append(result.guaranteed_throughput)
        assert guarantees[0] <= guarantees[1] <= guarantees[2]


class TestCAPlatform:
    def test_ca_platform_runs_and_guarantee_not_lower(
        self, gradient_encoded
    ):
        app = build_mjpeg_application(gradient_encoded)
        plain_arch = architecture_from_template(5, "fsl")
        plain = map_application(app, plain_arch, fixed={"VLD": "tile0"})

        ca_arch = architecture_from_template(5, "fsl", with_ca=True)
        with_ca = map_application(app, ca_arch, fixed={"VLD": "tile0"})
        assert with_ca.guaranteed_throughput >= plain.guaranteed_throughput

        simulator = synthesize(app, ca_arch, with_ca)
        measured = simulator.measure_throughput(
            iterations=12, warmup_iterations=2
        )
        assert measured.throughput >= with_ca.guaranteed_throughput

    def test_ca_frames_still_bit_exact(self, gradient_encoded):
        app = build_mjpeg_application(gradient_encoded)
        arch = architecture_from_template(5, "fsl", with_ca=True)
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        simulator = synthesize(app, arch, result)
        simulator.run_iterations(gradient_encoded.total_mcus)
        platform_frames = simulator._states["Raster"]["frames"]
        reference_frames = decode_sequence(gradient_encoded)
        for platform, reference in zip(platform_frames, reference_frames):
            assert np.array_equal(platform, reference)


class TestGeneratedProject:
    def test_project_reflects_mjpeg_system(self, gradient_encoded, tmp_path):
        app = build_mjpeg_application(gradient_encoded)
        arch = architecture_from_template(5, "fsl")
        flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
        result = flow.run(measure=False)
        root = result.project.write_to(tmp_path)

        main_of_vld_tile = (
            root / "src" / "tile0" / "main.c"
        ).read_text()
        assert "wrapper_VLD" in main_of_vld_tile
        netlist = (root / "system.mhs").read_text()
        assert "microblaze" in netlist
        assert "fsl_v20" in netlist
