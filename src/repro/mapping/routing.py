"""Channel routing on the interconnect.

Every explicit edge whose endpoints sit on different tiles needs
interconnect resources: a dedicated FSL link, or wires along an XY route of
the SDM NoC ("Connections are routed ...", Section 5.2).  Routing happens
in a deterministic edge order so repeated runs of the flow produce
identical platforms.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.appmodel.model import ApplicationModel
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.comm.params import ChannelParameters
from repro.exceptions import RoutingError
from repro.mapping.spec import ChannelMapping


def route_channels(
    app: ApplicationModel,
    arch: ArchitectureModel,
    binding: Dict[str, str],
    noc_wires: Optional[Dict[str, int]] = None,
) -> Dict[str, ChannelMapping]:
    """Create the channel mappings for every explicit edge.

    ``noc_wires`` optionally overrides the wire count per edge name (the
    SDM NoC's per-connection bandwidth knob).  Interconnect allocations are
    released and redone from scratch, so the call is idempotent.

    Returns edge name -> :class:`ChannelMapping` (buffer fields still 0;
    the buffer allocator fills them in).
    """
    arch.reset_interconnect()
    channels: Dict[str, ChannelMapping] = {}
    for edge in app.graph.explicit_edges():
        src_tile = binding[edge.src]
        dst_tile = binding[edge.dst]
        mapping = ChannelMapping(
            edge=edge.name, src_tile=src_tile, dst_tile=dst_tile
        )
        if src_tile != dst_tile:
            kwargs = {}
            if (
                noc_wires
                and edge.name in noc_wires
                and isinstance(arch.interconnect, SDMNoC)
            ):
                kwargs["wires"] = noc_wires[edge.name]
            try:
                mapping.parameters = arch.connect(
                    f"conn_{edge.name}", src_tile, dst_tile, **kwargs
                )
            except RoutingError as error:
                raise RoutingError(
                    f"cannot route channel {edge.name!r} "
                    f"({src_tile} -> {dst_tile}): {error}"
                ) from error
        channels[edge.name] = mapping
    return channels
