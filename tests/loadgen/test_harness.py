"""Tests for the load-test harness (repro.loadgen.harness)."""

import json
import threading

import pytest

from repro.loadgen import (
    LoadTestConfig,
    LoadTestGates,
    LoadTestReport,
    LoadgenError,
    percentile_ms,
    run_load_test,
    write_bench_report,
)


class TestPercentile:
    def test_nearest_rank(self):
        latencies = [0.010, 0.020, 0.030, 0.040]  # seconds
        assert percentile_ms(latencies, 50) == 20.0
        assert percentile_ms(latencies, 75) == 30.0
        assert percentile_ms(latencies, 100) == 40.0
        assert percentile_ms([0.005], 99) == 5.0

    def test_validation(self):
        with pytest.raises(LoadgenError, match="no latencies"):
            percentile_ms([], 50)
        with pytest.raises(LoadgenError, match="percentile"):
            percentile_ms([0.1], 0)


class TestConfig:
    def test_requires_a_url(self):
        with pytest.raises(LoadgenError, match="replica URL"):
            LoadTestConfig(urls=())


def synthetic_report(**overrides):
    base = dict(
        config=LoadTestConfig(urls=("http://x",), requests=10),
        outcomes=[],
        replicas=[],
        duration=2.0,
        offered_rps=20.0,
        sustained_rps=5.0,
        latency_ms={"p50": 10.0, "p95": 40.0, "p99": 90.0},
        completed=9,
        flow_failures=1,
        transport_errors=0,
        coalesced_hits=2,
        artifact_hits=4,
        computed=3,
    )
    base.update(overrides)
    return LoadTestReport(**base)


class TestGates:
    def test_passing_report_has_no_violations(self):
        gates = LoadTestGates(
            p99_budget_ms=100.0, min_coalesced=1, min_rps=1.0,
            max_failures=1,
        )
        assert gates.violations(synthetic_report()) == []

    def test_each_gate_fires(self):
        report = synthetic_report()
        assert LoadTestGates(p99_budget_ms=50.0).violations(report)
        assert LoadTestGates(min_coalesced=5).violations(report)
        assert LoadTestGates(min_rps=10.0).violations(report)
        # max_failures defaults to 0; the report has one flow failure
        assert LoadTestGates().violations(report)

    def test_no_gates_no_failures_passes(self):
        report = synthetic_report(flow_failures=0, completed=10)
        assert LoadTestGates().violations(report) == []

    def test_p99_gate_with_nothing_completed(self):
        report = synthetic_report(
            latency_ms={}, completed=0, flow_failures=0,
            transport_errors=10,
        )
        gates = LoadTestGates(p99_budget_ms=100.0, max_failures=10)
        assert any(
            "no request completed" in v for v in gates.violations(report)
        )


class TestAgainstLiveService:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        from repro.service import serve

        workspace = tmp_path_factory.mktemp("loadgen") / "ws"
        server = serve(workspace, port=0, jobs=2, replica="lg-test")
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        server.scheduler.close()

    def test_end_to_end_report(self, server, tmp_path):
        config = LoadTestConfig(
            urls=(server.url,),
            family="chain",
            unique=2,
            requests=10,
            rps=50.0,
            seed=13,
            actors=4,
            timeout=60.0,
        )
        report = run_load_test(config)
        assert report.completed == 10
        assert report.failures == 0
        assert report.sustained_rps > 0
        assert set(report.latency_ms) == {"p50", "p95", "p99"}
        assert (
            report.latency_ms["p50"]
            <= report.latency_ms["p95"]
            <= report.latency_ms["p99"]
        )
        # 10 requests over 2 unique documents: reuse must show up,
        # split between coalesced joins and artifact hits
        assert report.coalesced_hits + report.artifact_hits >= 8
        [replica] = report.replicas
        assert replica.replica == "lg-test"
        assert replica.backend == "thread"
        assert replica.delta["submitted"] == 10

        path = write_bench_report(
            report, tmp_path / "BENCH_service.json"
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["unit"] == "seconds"
        results = document["results"]
        for field in (
            "sustained_rps", "p50_ms", "p99_ms", "coalesced_hits",
            "artifact_hit_rate", "completed",
        ):
            assert field in results
        assert results["completed"] == 10

    def test_unreachable_replica_counts_as_transport_errors(
        self, tmp_path
    ):
        config = LoadTestConfig(
            urls=("http://127.0.0.1:1",),  # nothing listens here
            family="chain",
            unique=1,
            requests=3,
            rps=100.0,
            seed=1,
            timeout=5.0,
        )
        with pytest.raises(Exception):
            # the health pre-flight already fails: a dead replica is a
            # configuration error, not a measurement
            run_load_test(config)
