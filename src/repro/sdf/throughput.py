"""State-space throughput analysis of SDF graphs.

Implements the approach of Ghamarian et al. [3] as used by SDF3: execute the
graph self-timed; because a consistent, deadlock-free, bounded SDF graph has
finitely many execution states, the execution is eventually periodic.  When
the time-normalized state at an iteration boundary recurs, the throughput of
the periodic phase -- and therefore the long-term average throughput -- is::

    iterations in period / period length      [graph iterations per cycle]

The analysis supports processor bindings and static-order schedules through
the underlying :class:`~repro.sdf.simulation.SelfTimedSimulator`, which is
how the mapping flow obtains the *guaranteed* throughput of a mapped
application (the "worst-case analysis" line of Fig. 6).

Boundedness matters: a graph whose channels grow without limit (e.g. a
pipeline without buffer back-edges) never revisits a state.  The analysis
detects this by bounding the explored iterations and raising
:class:`UnboundedExecutionError`; callers should add buffer-size back-edges
(:mod:`repro.sdf.buffers`) first, which is also what any real implementation
does.

Repeated analyses of one graph structure (buffer sizing tries dozens of
initial-token variations of the same bounded graph) should go through
:class:`ThroughputAnalyzer`: it validates the graph and builds the
simulator once, and each :meth:`ThroughputAnalyzer.analyze` call resets
the simulator -- which re-reads initial tokens -- instead of recreating
the whole analysis stack.  :func:`analyze_throughput` is the one-shot
convenience wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Sequence

from repro.exceptions import DeadlockError, GraphError, SimulationError
from repro.sdf.deadlock import deadlock_report
from repro.sdf.graph import SDFGraph, validate_graph
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import SelfTimedSimulator


class UnboundedExecutionError(SimulationError):
    """Raised when no periodic phase is found within the iteration budget.

    Almost always means the graph has unbounded channels; add buffer
    back-edges before analyzing.
    """


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput analysis.

    Attributes
    ----------
    throughput:
        Graph iterations per clock cycle (exact rational).
    period:
        Length of the periodic phase in cycles.
    iterations_per_period:
        Graph iterations completed in one period.
    transient_iterations:
        Iterations executed before the periodic phase was entered.
    tier:
        Which engine tier produced the result (``analytic`` /
        ``vectorized`` / ``reference``; see :mod:`repro.sdf.engine`).
        Metadata only -- excluded from equality, which compares the
        analysis outcome.
    tier_reason:
        Why that tier was chosen when it was not the first choice (the
        ``auto`` fallback reason, or a note that the mode was forced);
        None when the preferred tier ran.  Metadata only.
    """

    throughput: Fraction
    period: int
    iterations_per_period: int
    transient_iterations: int
    tier: str = field(default="reference", compare=False)
    tier_reason: Optional[str] = field(default=None, compare=False)

    def iterations_in(self, cycles: int) -> Fraction:
        """Long-term average iterations completed in ``cycles`` cycles."""
        return self.throughput * cycles

    def cycles_per_iteration(self) -> Fraction:
        if self.throughput == 0:
            raise ZeroDivisionError("zero throughput")
        return 1 / self.throughput

    def per_mega_cycle(self) -> float:
        """Iterations per 10^6 cycles -- the unit of Fig. 6's y-axis
        ("MCUs per MHz per second")."""
        return float(self.throughput * 1_000_000)


class ThroughputAnalyzer:
    """Reusable state-space analyzer for one graph structure.

    Validation, the repetition vector and the simulator's integer-indexed
    adjacency are computed once in the constructor; every :meth:`analyze`
    call then resets the simulator and re-runs the periodic-phase
    detection.  Because the simulator's reset re-reads each edge's
    ``initial_tokens`` from the graph, callers may mutate initial token
    counts in place between calls (the buffer-sizing warm path and the
    mapping flow's buffer-growth loop both do) and still get exact
    results, without copying the graph or rebuilding the analysis stack.

    Parameters mirror :func:`analyze_throughput`; ``max_iterations`` set
    here is the default budget for every :meth:`analyze` call.
    """

    def __init__(
        self,
        graph: SDFGraph,
        auto_concurrency: Optional[int] = 1,
        processor_of: Optional[Dict[str, str]] = None,
        static_order: Optional[Dict[str, Sequence[str]]] = None,
        reference_actor: Optional[str] = None,
        max_iterations: int = 10_000,
    ) -> None:
        validate_graph(graph)
        self.graph = graph
        self.max_iterations = max_iterations
        self._auto_concurrency = auto_concurrency
        self._processor_of = processor_of
        self._static_order = static_order
        self._q = repetition_vector(graph)
        # The simulator and the reference actor are resolved lazily on the
        # first analyze(), after its deadlock pre-check, so a deadlocked
        # graph still reports DeadlockError before any construction or
        # reference-actor error (same observable order as the historic
        # one-shot function).
        self._reference_actor = reference_actor
        self.reference_actor: Optional[str] = None
        self._q_ref: Optional[int] = None
        self._sim: Optional[SelfTimedSimulator] = None

    def analyze(
        self,
        max_iterations: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> ThroughputResult:
        """Run one state-space analysis from the graph's current initial
        tokens.

        ``check_deadlock=False`` skips the untimed liveness pre-check (the
        self-timed execution still detects a blocked graph and raises
        :class:`~repro.exceptions.DeadlockError`, only with a less specific
        message) -- the right trade for tight sizing loops whose token
        growth provably preserves liveness.

        Raises
        ------
        DeadlockError
            If the graph deadlocks (throughput would be 0 after a finite
            run).
        UnboundedExecutionError
            If no periodic phase appears within the iteration budget.
        """
        if max_iterations is None:
            max_iterations = self.max_iterations
        if check_deadlock:
            report = deadlock_report(self.graph)
            if report is not None:
                raise DeadlockError(report)

        if self._sim is None:
            sim = SelfTimedSimulator(
                self.graph,
                auto_concurrency=self._auto_concurrency,
                processor_of=self._processor_of,
                static_order=self._static_order,
            )
            ref = self._reference_actor or self.graph.actors[0].name
            if ref not in self.graph:
                raise SimulationError(
                    f"reference actor {ref!r} not in graph"
                )
            self.reference_actor = ref
            self._q_ref = self._q[ref]
            self._sim = sim
        else:
            self._sim.reset()
        sim = self._sim
        ref = self.reference_actor
        q_ref = self._q_ref
        graph = self.graph

        seen: Dict[tuple, tuple] = {}  # state -> (iterations, time)
        iterations_done = 0

        while iterations_done < max_iterations:
            finished = sim.step()
            if not finished:
                # Quiescent: a deadlock-free graph only quiesces under a
                # static order that blocks -- treat as deadlock of the
                # mapped graph.
                raise DeadlockError(
                    f"mapped graph {graph.name!r} blocked after "
                    f"{iterations_done} iteration(s) at t={sim.now}; the "
                    "static-order schedule or buffer sizes admit no "
                    "execution"
                )
            completed_iterations = sim.completed_of(ref) // q_ref
            if completed_iterations > iterations_done:
                iterations_done = completed_iterations
                key = sim.state_key()
                if key in seen:
                    prev_iterations, prev_time = seen[key]
                    period = sim.now - prev_time
                    iter_count = iterations_done - prev_iterations
                    if period <= 0:
                        raise SimulationError(
                            f"graph {graph.name!r} completes {iter_count} "
                            "iteration(s) in zero time; all cycle times "
                            "are zero -- throughput is unbounded"
                        )
                    return ThroughputResult(
                        throughput=Fraction(iter_count, period),
                        period=period,
                        iterations_per_period=iter_count,
                        transient_iterations=prev_iterations,
                    )
                seen[key] = (iterations_done, sim.now)

        raise UnboundedExecutionError(
            f"no periodic phase within {max_iterations} iterations of "
            f"{graph.name!r}; channels likely grow without bound -- add "
            "buffer back-edges (repro.sdf.buffers.add_buffer_edges) before "
            "analyzing"
        )


def analyze_throughput(
    graph: SDFGraph,
    auto_concurrency: Optional[int] = 1,
    processor_of: Optional[Dict[str, str]] = None,
    static_order: Optional[Dict[str, Sequence[str]]] = None,
    reference_actor: Optional[str] = None,
    max_iterations: int = 10_000,
    engine: str = "auto",
) -> ThroughputResult:
    """Compute the self-timed throughput of ``graph``.

    Parameters mirror :class:`SelfTimedSimulator`; ``reference_actor``
    selects the actor whose completed firings count iterations (any actor
    gives the same long-term result; default is the first actor).

    One-shot convenience wrapper over the tiered
    :class:`~repro.sdf.engine.ThroughputEngine`; construct the engine
    directly when analyzing the same graph structure repeatedly.
    ``engine`` pins a tier (``auto``/``analytic``/``vectorized``/
    ``reference``); every tier returns the same exact ``Fraction``
    throughput.

    Raises
    ------
    DeadlockError
        If the graph deadlocks (throughput would be 0 after a finite run).
    UnboundedExecutionError
        If no periodic phase appears within ``max_iterations`` iterations.
    """
    from repro.sdf.engine import ThroughputEngine

    return ThroughputEngine(
        graph,
        auto_concurrency=auto_concurrency,
        processor_of=processor_of,
        static_order=static_order,
        reference_actor=reference_actor,
        max_iterations=max_iterations,
        mode=engine,
    ).analyze()


def processing_throughput_bound(graph: SDFGraph) -> Fraction:
    """Structural upper bound on throughput from actor workloads alone.

    With auto-concurrency 1, actor ``a`` needs ``q[a] * t_a`` cycles of its
    own time per iteration, so no schedule can beat
    ``1 / max_a(q[a] * t_a)``.  Useful for sizing platforms before mapping.
    """
    if len(graph) == 0:
        raise GraphError(
            f"graph {graph.name!r} has no actors; the processing bound "
            "is undefined"
        )
    q = repetition_vector(graph)
    worst = max(
        (q[a.name] * a.execution_time for a in graph), default=0
    )
    if worst == 0:
        raise SimulationError(
            "all actors have zero execution time; bound is infinite"
        )
    return Fraction(1, worst)
