"""Command-line interface: ``python -m repro <command>``.

Commands mirror the tool invocations of the original flow:

* ``analyze <graph.xml> [--json] [--tiles N]`` -- SDF3-style analysis of
  a graph file: repetition vector, liveness, throughput (the graph must
  be bounded, e.g. carry buffer back-edges); ``--json`` additionally
  maps the graph onto a template platform and emits the mapping result
  (binding, per-channel capacities, guaranteed throughput) as JSON for
  downstream tooling; ``--power-budget`` / ``--energy-budget`` /
  ``--tech-node`` additionally report platform power and application
  energy against the budgets (see docs/power.md);
* ``demo [sequence] [--tiles N] [--interconnect fsl|noc]`` -- run the
  MJPEG case study end to end and print the Fig. 6-style numbers plus
  Table 1;
* ``run --spec scenario.toml [--workspace DIR] [--backend B] [--json]``
  -- execute a declarative FlowSpec scenario (see
  :mod:`repro.flow.spec`) through the full flow; with ``--workspace``
  it runs as a resumable :class:`~repro.flow.session.FlowSession`
  (required for multi-application specs and for
  ``--backend process``, which computes on a worker process);
* ``batch <spec>... --workspace DIR [--jobs N] [--backend B]
  [--table]`` -- run many scenarios against one shared artifact
  workspace, resuming every stage whose input fingerprints are
  unchanged, and emit a machine-readable batch report; ``--backend
  process`` fans sessions out across worker processes with
  byte-identical artifacts;
* ``explore [sequence] [--max-tiles N] [--jobs N] [--effort LEVEL]
  [--binding NAME] [--buffer-policy NAME] [--seed N] [--heterogeneous]
  [--with-ca] [--early-exit] [--csv] [--power-budget MW]
  [--energy-budget NJ] [--tech-node NM]`` -- explore the template
  design space for the MJPEG decoder with the parallel, cached
  exploration engine and print the Pareto report; the power flags add
  energy as a third Pareto objective and prune over-budget points
  (``dse`` is the compatible alias);
* ``serve --workspace DIR [--host H] [--port P] [--jobs N]
  [--max-queue N] [--backend B] [--replica NAME]`` -- run the flow
  service (:mod:`repro.service`): an HTTP JSON API that accepts
  FlowSpec submissions, coalesces identical in-flight requests, and
  serves repeated requests straight from the workspace artifacts with
  zero re-analysis; ``--backend process`` computes flows on worker
  processes, and replicas sharing one workspace scale across cores
  (see docs/service.md);
* ``loadtest [--url URL]... [--requests N] [--rps R] [--seed N]
  [--p99-budget-ms MS] [--min-coalesced N] [--out FILE]`` -- fire a
  seeded open-loop traffic plan (:mod:`repro.loadgen`) at one or more
  running services, print sustained RPS / p50-p99 latency / reuse
  counters, optionally write ``BENCH_service.json``, and exit non-zero
  when a gate flag is missed (the CI load-smoke verdict);
* ``scenarios generate --seed N [--family F] [--count N] --out DIR`` --
  write a deterministic corpus of synthetic-workload FlowSpec TOML
  files (:mod:`repro.scenarios`); the same seed always produces
  byte-identical files, and the output runs through ``run``/``batch``/
  ``serve`` unchanged (``scenarios families`` lists the graph
  families; see docs/scenarios.md);
* ``platform build-library --spec S --workspace DIR`` /
  ``platform admit --spec S --url URL`` /
  ``platform depart APP_ID --url URL [--migrate]`` /
  ``platform status --url URL`` -- the run-time side
  (:mod:`repro.runtime`): precompute per-application operating-point
  libraries at design time, then admit/depart applications against a
  live ``repro serve`` platform with zero re-analysis (see
  docs/runtime.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction
from typing import List, Optional

from repro.arch import architecture_from_template
from repro.exceptions import ReproError
from repro.sdf import (
    ENGINE_MODES,
    analyze_throughput,
    is_deadlock_free,
    repetition_vector,
)
from repro.sdf.io_sdf3 import load_graph


def _map_template(
    graph,
    tiles: int,
    interconnect: str,
    max_iterations: Optional[int] = None,
    engine: str = "auto",
):
    """Map a bare graph onto a template platform.

    Returns ``(app, arch, result)`` -- the synthesized application
    model, the template architecture and the mapping result -- so
    callers can both serialize the result and feed the triple to the
    power/energy estimators.

    Graph files carry no implementation metrics, so each actor gets a
    synthesized single-PE implementation whose WCET is its execution
    time (the conservative reading of an SDF3 graph file).  Pre-existing
    ``buf__`` credit back-edges are stripped first: they encode the
    capacities of the *analysis* form, and the mapping flow allocates
    its own buffer capacities (leaving them would also collide with the
    bound graph's modeling edges).
    """
    from repro.appmodel import (
        ActorImplementation,
        ApplicationModel,
        ImplementationMetrics,
        MemoryRequirements,
    )
    from repro.mapping import map_application
    from repro.sdf.buffers import BUFFER_EDGE_PREFIX

    graph = graph.copy(graph.name)
    for edge in list(graph.edges):
        if edge.implicit and edge.name.startswith(BUFFER_EDGE_PREFIX):
            graph.remove_edge(edge.name)

    app = ApplicationModel(
        graph=graph,
        implementations=[
            ActorImplementation(
                actor=actor.name,
                pe_type="microblaze",
                metrics=ImplementationMetrics(
                    wcet=max(actor.execution_time or 1, 1),
                    memory=MemoryRequirements(
                        instruction_bytes=4096, data_bytes=2048
                    ),
                ),
            )
            for actor in graph
        ],
    )
    arch = architecture_from_template(tiles, interconnect)
    effort = "normal" if engine == "auto" else f"normal+eng{engine}"
    result = map_application(
        app, arch, max_iterations=max_iterations, effort=effort
    )
    return app, arch, result


def _parse_budget(value: Optional[str], flag: str) -> Optional[Fraction]:
    """Parse a positive budget flag value as an exact fraction."""
    if value is None:
        return None
    try:
        budget = Fraction(value)
    except (ValueError, ZeroDivisionError):
        raise ReproError(
            f"invalid {flag} {value!r}; expected a number like 250, "
            "1.5 or 81/2"
        ) from None
    if budget <= 0:
        raise ReproError(f"{flag} must be > 0, got {value}")
    return budget


def _power_model(args: argparse.Namespace):
    """A :class:`~repro.power.PowerModel` when any power flag is set,
    else ``None`` (estimation off; artifacts and cache keys unchanged).
    """
    from repro.power import BASE_TECH_NM, PowerModel

    power_budget = _parse_budget(args.power_budget, "--power-budget")
    energy_budget = _parse_budget(args.energy_budget, "--energy-budget")
    if (
        power_budget is None
        and energy_budget is None
        and args.tech_node is None
    ):
        return None, None, None
    tech = args.tech_node if args.tech_node is not None else BASE_TECH_NM
    return PowerModel(tech_nm=tech), power_budget, energy_budget


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.max_iterations is not None and args.max_iterations < 1:
        raise ReproError(
            f"--max-iterations must be >= 1, got {args.max_iterations}"
        )
    graph = load_graph(args.graph)
    q = repetition_vector(graph)
    live = is_deadlock_free(graph)
    throughput_kwargs = (
        {} if args.max_iterations is None
        else {"max_iterations": args.max_iterations}
    )
    result = (
        analyze_throughput(graph, engine=args.engine, **throughput_kwargs)
        if live else None
    )

    model, power_budget, energy_budget = _power_model(args)
    mapped = None
    mapping_error: Optional[ReproError] = None
    if result is not None and (args.json or model is not None):
        try:
            mapped = _map_template(
                graph, args.tiles, args.interconnect,
                max_iterations=args.max_iterations,
                engine=args.engine,
            )
        except ReproError as error:
            mapping_error = error

    power = energy = None
    if model is not None and mapped is not None:
        from repro.power import application_energy, platform_power

        app, arch, mapping_result = mapped
        power = platform_power(arch, model)
        energy = application_energy(app, mapping_result, arch, model)

    if args.json:
        payload = {
            "graph": {
                "name": graph.name,
                "actors": len(graph),
                "edges": len(graph.edges),
            },
            "repetition_vector": dict(sorted(q.items())),
            "deadlock_free": live,
        }
        if result is not None:
            payload["throughput"] = {
                "iterations_per_cycle": str(result.throughput),
                "per_mega_cycle": result.per_mega_cycle(),
                "period_cycles": result.period,
                "engine_tier": result.tier,
            }
            payload["mapping"] = (
                {"error": str(mapping_error)}
                if mapped is None
                else mapped[2].to_payload()
            )
        # power section only when power flags were given, so default
        # invocations emit the exact document they always did
        if power is not None and energy is not None:
            section = {
                "platform": power.to_payload(),
                "application": energy.to_payload(),
            }
            if power_budget is not None:
                section["within_power_budget"] = (
                    power.within_budget(power_budget)
                )
            if energy_budget is not None:
                section["within_energy_budget"] = (
                    energy.within_budget(energy_budget)
                )
            payload["power"] = section
        print(json.dumps(payload, indent=2))
        return 0

    print(f"graph {graph.name!r}: {len(graph)} actors, "
          f"{len(graph.edges)} edges")
    print("repetition vector:")
    for name, count in sorted(q.items()):
        print(f"  {name}: {count}")
    print(f"deadlock-free: {'yes' if live else 'NO'}")
    if result is not None:
        print(
            f"throughput: {result.throughput} iterations/cycle "
            f"({result.per_mega_cycle():.4f} per Mcycle; period "
            f"{result.period} cycles)"
        )
    if model is not None:
        if mapped is None:
            reason = (
                str(mapping_error) if mapping_error is not None
                else "graph is not analyzable"
            )
            print(f"power: unavailable ({reason})")
        else:
            print(f"power: {power.describe()}")
            print(f"energy: {energy.describe()}")
            if power_budget is not None:
                verdict = (
                    "yes" if power.within_budget(power_budget) else "NO"
                )
                print(
                    f"within power budget "
                    f"({float(power_budget):.1f} mW): {verdict}"
                )
            if energy_budget is not None:
                verdict = (
                    "yes" if energy.within_budget(energy_budget)
                    else "NO"
                )
                print(
                    f"within energy budget "
                    f"({float(energy_budget):.2f} nJ/iter): {verdict}"
                )
    return 0


def _load_case_study(sequence: str, quality: Optional[int] = None):
    from repro.flow.spec import build_case_study_app

    return build_case_study_app(sequence, quality=quality)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.flow import DesignFlow

    app = _load_case_study(args.sequence)
    arch = architecture_from_template(args.tiles, args.interconnect)
    flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
    result = flow.run(iterations=args.iterations)
    print(result.summary())
    if args.output:
        root = result.project.write_to(args.output)
        print(f"\nproject written to {root}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.flow import (
        DesignFlow,
        execute_spec,
        execute_spec_on,
        load_flow_spec,
    )

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    if args.backend == "process" and not args.workspace:
        raise ReproError(
            "--backend process runs the analysis-side session on a "
            "worker process; pass --workspace DIR"
        )
    spec = load_flow_spec(args.spec)
    if args.workspace or spec.multi:
        # the resumable session path (required for multi-app specs)
        if not args.workspace:
            raise ReproError(
                f"spec {spec.name!r} declares multiple applications; "
                "pass --workspace DIR (or use 'repro batch') to run it "
                "as a resumable session"
            )
        if args.output:
            raise ReproError(
                "--output needs the full flow (MAMPS generation), which "
                "the analysis-side session path does not run; drop "
                "--workspace to generate the project"
            )
        if args.iterations is not None:
            raise ReproError(
                "--iterations configures measurement, which the "
                "analysis-side session path does not run; drop "
                "--workspace to measure"
            )
        if args.backend == "process":
            from repro.flow import create_backend

            engine = create_backend("process", args.jobs)
            try:
                result = execute_spec_on(
                    spec, args.workspace, backend=engine
                )
            finally:
                engine.close()
        else:
            result = execute_spec(spec, args.workspace)
        if args.json:
            from repro.artifacts import canonical_json, to_payload

            print(canonical_json(to_payload(result)))
        else:
            print(spec.describe())
            print()
            print(result.summary())
            if result.use_cases is not None:
                print()
                print(result.use_cases.as_table())
        return 0

    flow = DesignFlow.from_spec(spec)
    result = flow.run(
        iterations=args.iterations if args.iterations is not None else 16
    )
    if args.json:
        from repro.artifacts import canonical_json, to_payload

        print(canonical_json(to_payload(result)))
    else:
        print(spec.describe())
        print()
        print(result.summary())
    if args.output:
        root = result.project.write_to(args.output)
        # keep --json stdout a single parseable document
        stream = sys.stderr if args.json else sys.stdout
        print(f"\nproject written to {root}", file=stream)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.artifacts import canonical_json, to_payload
    from repro.flow import run_batch

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    report = run_batch(
        args.specs, args.workspace, jobs=args.jobs, backend=args.backend
    )
    if args.table:
        print(report.as_table())
    else:
        print(canonical_json(to_payload(report)))
    return 0 if report.ok else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.flow import (
        COMPACT_MIX,
        UNIFORM_MIX,
        explore_design_space,
        exploration_csv,
        format_exploration_report,
    )

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    if args.early_exit and not args.constraint:
        raise ReproError(
            "--early-exit needs --constraint (the case-study application "
            "carries no throughput constraint of its own)"
        )
    constraint = None
    if args.constraint:
        try:
            constraint = Fraction(args.constraint)
        except (ValueError, ZeroDivisionError):
            raise ReproError(
                f"invalid --constraint {args.constraint!r}; expected a "
                "fraction like 1/6000"
            ) from None
    effort = args.effort
    if args.max_iterations is not None:
        if args.max_iterations < 1:
            raise ReproError(
                f"--max-iterations must be >= 1, got {args.max_iterations}"
            )
        # Derived effort preset: same retry budget, overridden state-space
        # iteration budget; survives the name-typed candidate plumbing.
        effort = f"{effort}+it{args.max_iterations}"
    if args.engine != "auto":
        # Engine pin rides the effort name the same way (and therefore
        # lands in evaluation/cache keys; 'auto' keeps keys unchanged).
        effort = f"{effort}+eng{args.engine}"
    power_model, power_budget, energy_budget = _power_model(args)
    app = _load_case_study(args.sequence)
    mixes = (UNIFORM_MIX, COMPACT_MIX) if args.heterogeneous \
        else (UNIFORM_MIX,)
    result = explore_design_space(
        app,
        tile_counts=tuple(range(1, args.max_tiles + 1)),
        interconnects=("fsl", "noc"),
        ca_options=(False, True) if args.with_ca else (False,),
        constraint=constraint,
        fixed={"VLD": "tile0"},
        mixes=mixes,
        effort=effort,
        jobs=args.jobs,
        backend=args.backend,
        early_exit=args.early_exit,
        binding=args.binding,
        routing=args.routing,
        buffer_policy=args.buffer_policy,
        seed=args.seed,
        power_budget=power_budget,
        energy_budget=energy_budget,
        power_model=power_model,
    )
    if args.csv:
        print(exploration_csv(result))
    elif args.json:
        from repro.artifacts import canonical_json

        print(canonical_json(result.to_payload()))
    else:
        print(format_exploration_report(result))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.scenarios import (
        FAMILIES,
        generate_scenarios,
        render_flow_spec_toml,
        scenario_flow_spec,
    )

    if args.action == "families":
        for family in FAMILIES:
            print(family)
        return 0

    specs = generate_scenarios(
        args.family,
        args.count,
        args.seed,
        actors=args.actors,
        max_rate=args.max_rate,
        wcet_profile=args.wcet_profile,
        token_bytes=args.token_bytes,
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for spec in specs:
        flow_spec = scenario_flow_spec(spec)
        target = out / f"{spec.name}.toml"
        target.write_text(
            render_flow_spec_toml(flow_spec), encoding="utf-8"
        )
        print(target)
    return 0


def _cmd_platform(args: argparse.Namespace) -> int:
    if args.action == "build-library":
        from pathlib import Path

        from repro.artifacts.store import ArtifactStore
        from repro.flow.spec import load_flow_spec
        from repro.runtime import build_library

        spec = load_flow_spec(args.spec)
        # same layout FlowSession/serve use, so 'repro serve' on this
        # workspace admits straight from the libraries built here
        store = ArtifactStore(Path(args.workspace) / "artifacts")
        summaries = []
        for app_spec in spec.apps:
            build = build_library(
                spec,
                store=store,
                app_spec=app_spec,
                max_tiles=args.max_tiles,
            )
            summaries.append(build.summary())
        if args.json:
            print(json.dumps(summaries, indent=2, sort_keys=True))
            return 0
        for summary in summaries:
            points = ", ".join(summary["points"]) or "none"
            print(f"{summary['app']}: {len(summary['points'])} "
                  f"operating point(s) [{points}]")
            print(f"  key       {summary['key']}")
            print(f"  analyses  {summary['analyses']} "
                  f"(resumed {summary['resumed']})")
            if summary["infeasible"]:
                sizes = ", ".join(str(n) for n in summary["infeasible"])
                print(f"  infeasible platform sizes: {sizes}")
        return 0

    from repro.service import FlowServiceClient

    client = FlowServiceClient(args.url)
    if args.action == "admit":
        decision = client.platform_admit(args.spec)
        if args.json:
            print(json.dumps(decision, indent=2, sort_keys=True))
        else:
            tiles = ", ".join(decision["tiles"])
            print(f"admitted {decision['app_id']} "
                  f"({decision['app']!r}) on [{tiles}]")
            print(f"  point      {decision['point']} "
                  f"(source {decision['source']}, "
                  f"{decision['analyses']} analyses)")
            print(f"  guarantee  {decision['guarantee']} "
                  f"iterations/cycle")
        return 0
    if args.action == "depart":
        outcome = client.platform_depart(args.app_id, migrate=args.migrate)
        if args.json:
            print(json.dumps(outcome, indent=2, sort_keys=True))
        else:
            freed = ", ".join(outcome["freed_tiles"]) or "none"
            print(f"departed {outcome['app_id']} "
                  f"({outcome['app']!r}); freed tiles: {freed}")
            for migration in outcome["migrations"]:
                print(f"  migrated {migration['app_id']} to point "
                      f"{migration['point']} (guarantee "
                      f"{migration['from_guarantee']} -> "
                      f"{migration['to_guarantee']}, downtime "
                      f"{migration['downtime_cycles']} cycles)")
        return 0
    status = client.platform_status()
    if args.json or not status.get("configured"):
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    residual = status["residual"]
    print(f"platform: {len(status['apps'])} app(s) admitted, "
          f"free tiles: {', '.join(residual['free_tiles']) or 'none'}")
    for app in status["apps"]:
        tiles = ", ".join(app["tiles"])
        print(f"  {app['id']}  {app['app']!r}  point {app['point']} "
              f"on [{tiles}]  guarantee {app['guarantee']}")
    counters = status["counters"]
    print("counters: " + ", ".join(
        f"{name}={counters[name]}" for name in sorted(counters)
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import FlowServiceServer, FlowScheduler

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_queue < 1:
        raise ReproError(f"--max-queue must be >= 1, got {args.max_queue}")
    scheduler = FlowScheduler(
        args.workspace,
        jobs=args.jobs,
        max_queue=args.max_queue,
        backend=args.backend,
        replica=args.replica or None,
    )
    try:
        server = FlowServiceServer(
            scheduler, host=args.host, port=args.port, quiet=args.quiet
        )
    except OSError as error:
        scheduler.close()
        raise ReproError(
            f"cannot bind {args.host}:{args.port}: {error}"
        ) from None
    print(
        f"flow service on {server.url} "
        f"(workspace {scheduler.workspace}, replica "
        f"{scheduler.replica}, {args.jobs} {args.backend} worker(s), "
        f"queue bound {args.max_queue})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        # close() also terminates process-backend workers promptly, so
        # Ctrl-C leaves no orphaned children behind
        server.server_close()
        scheduler.close()
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.loadgen import (
        LoadTestConfig,
        LoadTestGates,
        run_load_test,
        write_bench_report,
    )

    config = LoadTestConfig(
        urls=tuple(args.url or ("http://127.0.0.1:8787",)),
        family=args.family,
        unique=args.unique,
        requests=args.requests,
        rps=args.rps,
        seed=args.seed,
        actors=args.actors,
        timeout=args.timeout,
    )
    report = run_load_test(config)
    if args.json:
        from repro.artifacts import canonical_json

        print(canonical_json(report.to_payload()))
    else:
        print(report.summary())
    if args.out:
        path = write_bench_report(report, args.out)
        print(f"report written to {path}",
              file=sys.stderr if args.json else sys.stdout)
    gates = LoadTestGates(
        p99_budget_ms=args.p99_budget_ms,
        min_coalesced=args.min_coalesced,
        min_rps=args.min_rps,
        max_failures=args.max_failures,
    )
    violations = gates.violations(report)
    for violation in violations:
        print(f"gate failed: {violation}", file=sys.stderr)
    return 1 if violations else 0


def _add_power_arguments(
    parser: argparse.ArgumentParser, verb: str
) -> None:
    """The shared power/energy flags of ``analyze`` and ``explore``.

    Any of the three turns power estimation on; with all of them absent
    the flow computes no estimates and cache keys, artifacts and output
    stay byte-identical to a build without the power subsystem.
    """
    from repro.power import BASE_TECH_NM, TECH_NODES

    parser.add_argument(
        "--power-budget", metavar="MW", default=None,
        help=f"{verb} peak platform power against this budget "
             "in milliwatts (a number or fraction, e.g. 250 or 81/2); "
             "turns power/energy estimation on",
    )
    parser.add_argument(
        "--energy-budget", metavar="NJ", default=None,
        help=f"{verb} application energy per graph iteration against "
             "this budget in nanojoules; turns power/energy "
             "estimation on",
    )
    parser.add_argument(
        "--tech-node", type=int, choices=sorted(TECH_NODES),
        default=None,
        help="technology node of the power model in nm (default "
             f"{BASE_TECH_NM}); turns power/energy estimation on",
    )


def build_parser() -> argparse.ArgumentParser:
    # deferred: the strategy registry pulls in the whole mapping stack,
    # which commands like `analyze` never need at startup
    from repro.mapping.pipeline import registered

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automated flow to map throughput-constrained applications "
            "to a MPSoC (Jordans et al., PPES 2011 -- reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze an SDF3-style XML graph"
    )
    analyze.add_argument("graph", help="path to the graph XML file")
    analyze.add_argument(
        "--json", action="store_true",
        help="emit analysis plus a template-platform mapping result "
             "(binding, buffer capacities, throughput guarantee) as JSON",
    )
    analyze.add_argument(
        "--tiles", type=int, default=2,
        help="template tile count for the --json mapping (default 2)",
    )
    analyze.add_argument(
        "--interconnect", choices=("fsl", "noc"), default="fsl",
        help="template interconnect for the --json mapping",
    )
    analyze.add_argument(
        "--max-iterations", type=int, default=None, metavar="N",
        help="state-space iteration budget of the throughput analysis "
             "(default 10000); raise it for large bounded graphs whose "
             "periodic phase needs more iterations to appear",
    )
    analyze.add_argument(
        "--engine", choices=ENGINE_MODES, default="auto",
        help="throughput engine tier: 'auto' picks the analytic "
             "max-cycle-mean fast path when the graph allows it and "
             "falls back to the vectorized simulation core; pin a tier "
             "to force it (forcing 'analytic' fails on graphs it cannot "
             "model)",
    )
    _add_power_arguments(analyze, verb="report")
    analyze.set_defaults(handler=_cmd_analyze)

    demo = commands.add_parser(
        "demo", help="run the MJPEG case study end to end"
    )
    demo.add_argument("sequence", nargs="?", default="gradient")
    demo.add_argument("--tiles", type=int, default=5)
    demo.add_argument(
        "--interconnect", choices=("fsl", "noc"), default="fsl"
    )
    demo.add_argument("--iterations", type=int, default=16)
    demo.add_argument(
        "--output", help="write the generated project under this directory"
    )
    demo.set_defaults(handler=_cmd_demo)

    run = commands.add_parser(
        "run",
        help="execute a declarative FlowSpec scenario (TOML or JSON)",
    )
    run.add_argument(
        "--spec", required=True,
        help="path to the scenario document (see docs/mapping.md)",
    )
    run.add_argument(
        "--iterations", type=int, default=None,
        help="measurement iterations of the full flow (default 16; "
             "incompatible with --workspace)",
    )
    run.add_argument(
        "--output", help="write the generated project under this "
                         "directory (incompatible with --workspace)"
    )
    run.add_argument(
        "--workspace", metavar="DIR",
        help="run as a resumable analysis-side FlowSession against this "
             "workspace (stages with unchanged input fingerprints are "
             "skipped; required for multi-application specs)",
    )
    run.add_argument(
        "--json", action="store_true",
        help="emit the canonical artifact payload instead of the "
             "human-readable summary (see docs/artifacts.md)",
    )
    run.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="execution backend; 'process' computes the session on a "
             "worker process (needs --workspace) with byte-identical "
             "artifacts",
    )
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker count of the execution backend (default 1)",
    )
    run.set_defaults(handler=_cmd_run)

    batch = commands.add_parser(
        "batch",
        help="run many FlowSpec scenarios against one shared workspace",
    )
    batch.add_argument(
        "specs", nargs="+",
        help="paths to scenario documents (TOML or JSON)",
    )
    batch.add_argument(
        "--workspace", required=True, metavar="DIR",
        help="shared artifact workspace; re-running the same batch "
             "against it resumes every unchanged stage",
    )
    batch.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent sessions (default 1: serial; output and "
             "artifacts are identical either way)",
    )
    batch.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="execution backend; 'process' runs sessions on worker "
             "processes (true multi-core) with byte-identical artifacts",
    )
    batch.add_argument(
        "--table", action="store_true",
        help="human-readable table instead of the canonical JSON report",
    )
    batch.set_defaults(handler=_cmd_batch)

    scenarios = commands.add_parser(
        "scenarios",
        help="generate seeded synthetic FlowSpec scenarios "
             "(see docs/scenarios.md)",
    )
    scenario_actions = scenarios.add_subparsers(
        dest="action", required=True
    )
    families = scenario_actions.add_parser(
        "families", help="list the known graph families"
    )
    families.set_defaults(handler=_cmd_scenarios)
    generate = scenario_actions.add_parser(
        "generate",
        help="write a deterministic corpus of scenario TOML files "
             "(same seed => byte-identical files)",
    )
    generate.add_argument(
        "--seed", type=int, required=True,
        help="master seed; fully determines the corpus",
    )
    generate.add_argument(
        "--family",
        choices=("chain", "splitjoin", "diamond", "cyclic", "mixed",
                 "all"),
        default="all",
        help="graph family ('all' cycles through every family)",
    )
    generate.add_argument(
        "--count", type=int, default=5,
        help="number of scenarios to generate (default 5)",
    )
    generate.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory the scenario TOML files are written into",
    )
    generate.add_argument(
        "--actors", type=int, default=None,
        help="target actor count (default: varied per scenario)",
    )
    generate.add_argument(
        "--max-rate", type=int, default=3,
        help="upper bound on rate skew (default 3)",
    )
    generate.add_argument(
        "--wcet-profile", choices=("uniform", "mixed", "wide"),
        default="mixed",
        help="execution-time draw range (default 'mixed')",
    )
    generate.add_argument(
        "--token-bytes", type=int, default=16,
        help="upper bound on per-edge token sizes in bytes (default 16)",
    )
    generate.set_defaults(handler=_cmd_scenarios)

    serve = commands.add_parser(
        "serve",
        help="serve FlowSpec scenarios over HTTP from a shared workspace",
    )
    serve.add_argument(
        "--workspace", required=True, metavar="DIR",
        help="artifact workspace the service computes into and serves "
             "from; a warm workspace (e.g. from 'repro batch') answers "
             "known requests with zero re-analysis",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8787,
        help="TCP port (default 8787; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2,
        help="concurrent flow computations (default 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=32,
        help="max jobs queued or running before submissions are "
             "rejected with HTTP 429 (default 32)",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="execution backend; 'process' computes flows on worker "
             "processes so replicas scale across cores "
             "(see docs/service.md)",
    )
    serve.add_argument(
        "--replica", default="",
        help="replica name surfaced in health and job views (default: "
             "replica-<pid>); replicas sharing one workspace need no "
             "other coordination",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request access logging on stderr",
    )
    serve.set_defaults(handler=_cmd_serve)

    loadtest = commands.add_parser(
        "loadtest",
        help="fire a seeded open-loop traffic plan at running "
             "service replicas and gate on the measured report "
             "(see docs/service.md)",
    )
    loadtest.add_argument(
        "--url", action="append", metavar="URL",
        help="base URL of a running service; repeat to fan traffic "
             "out round-robin across replicas "
             "(default http://127.0.0.1:8787)",
    )
    loadtest.add_argument(
        "--family",
        choices=("chain", "splitjoin", "diamond", "cyclic", "mixed",
                 "all"),
        default="mixed",
        help="scenario family of the request pool (default 'mixed')",
    )
    loadtest.add_argument(
        "--unique", type=int, default=4,
        help="distinct FlowSpec documents in the pool (default 4); "
             "fewer unique documents means more coalescing/reuse",
    )
    loadtest.add_argument(
        "--requests", type=int, default=40,
        help="total requests to fire (default 40)",
    )
    loadtest.add_argument(
        "--rps", type=float, default=20.0,
        help="offered arrival rate in requests/second (default 20); "
             "arrivals are open-loop Poisson and never wait for "
             "responses",
    )
    loadtest.add_argument(
        "--seed", type=int, default=7,
        help="master seed; fully determines pool, sequence and "
             "arrival times (default 7)",
    )
    loadtest.add_argument(
        "--actors", type=int, default=None,
        help="target actor count per scenario (default: varied); "
             "larger graphs make heavier requests",
    )
    loadtest.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-request completion budget in seconds (default 120)",
    )
    loadtest.add_argument(
        "--out", metavar="FILE",
        help="write the canonical BENCH_service.json report here",
    )
    loadtest.add_argument(
        "--json", action="store_true",
        help="emit the full report document instead of the summary",
    )
    loadtest.add_argument(
        "--p99-budget-ms", type=float, default=None, metavar="MS",
        help="gate: fail when p99 latency exceeds this budget",
    )
    loadtest.add_argument(
        "--min-coalesced", type=int, default=None, metavar="N",
        help="gate: fail when fewer than N requests were coalesced "
             "onto in-flight computations",
    )
    loadtest.add_argument(
        "--min-rps", type=float, default=None, metavar="R",
        help="gate: fail when sustained throughput falls below R",
    )
    loadtest.add_argument(
        "--max-failures", type=int, default=0, metavar="N",
        help="gate: tolerate at most N failed requests (default 0)",
    )
    loadtest.set_defaults(handler=_cmd_loadtest)

    platform = commands.add_parser(
        "platform",
        help="run-time platform management: operating-point libraries "
             "plus admission/departure against a live service "
             "(see docs/runtime.md)",
    )
    platform_actions = platform.add_subparsers(
        dest="action", required=True
    )
    build_lib = platform_actions.add_parser(
        "build-library",
        help="precompute the operating-point library for every "
             "application of a FlowSpec (warm workspaces resume with "
             "zero re-analysis)",
    )
    build_lib.add_argument(
        "--spec", required=True,
        help="path to the scenario document (TOML or JSON)",
    )
    build_lib.add_argument(
        "--workspace", required=True, metavar="DIR",
        help="artifact workspace the libraries (and per-size mapping "
             "results) are persisted into; point 'repro serve' at the "
             "same workspace to admit from them",
    )
    build_lib.add_argument(
        "--max-tiles", type=int, default=None, metavar="N",
        help="cap the swept platform sizes (default: the spec's "
             "architecture tile count)",
    )
    build_lib.add_argument(
        "--json", action="store_true",
        help="emit the per-app build summaries as JSON",
    )
    build_lib.set_defaults(handler=_cmd_platform)
    admit = platform_actions.add_parser(
        "admit",
        help="admit a FlowSpec's application onto the platform of a "
             "running service",
    )
    admit.add_argument(
        "--spec", required=True,
        help="path to the scenario document (TOML or JSON)",
    )
    admit.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="base URL of the running service "
             "(default http://127.0.0.1:8787)",
    )
    admit.add_argument(
        "--json", action="store_true",
        help="emit the raw admission decision as JSON",
    )
    admit.set_defaults(handler=_cmd_platform)
    depart = platform_actions.add_parser(
        "depart", help="depart one admitted application by id"
    )
    depart.add_argument(
        "app_id", help="application id reported at admission"
    )
    depart.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="base URL of the running service "
             "(default http://127.0.0.1:8787)",
    )
    depart.add_argument(
        "--migrate", action="store_true",
        help="rebalance survivors onto the freed capacity when the "
             "migration cost model says the downtime pays off",
    )
    depart.add_argument(
        "--json", action="store_true",
        help="emit the raw departure outcome as JSON",
    )
    depart.set_defaults(handler=_cmd_platform)
    pstatus = platform_actions.add_parser(
        "status",
        help="show admitted apps, placements and residual capacity",
    )
    pstatus.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="base URL of the running service "
             "(default http://127.0.0.1:8787)",
    )
    pstatus.add_argument(
        "--json", action="store_true",
        help="emit the raw platform state as JSON",
    )
    pstatus.set_defaults(handler=_cmd_platform)

    for alias in ("explore", "dse"):
        explore = commands.add_parser(
            alias,
            help=(
                "explore the template design space for the case study"
                + ("" if alias == "explore" else " (alias of 'explore')")
            ),
        )
        explore.add_argument("sequence", nargs="?", default="gradient")
        explore.add_argument("--max-tiles", type=int, default=5)
        explore.add_argument(
            "--jobs", type=int, default=1,
            help="concurrent evaluation workers (default 1: serial)",
        )
        explore.add_argument(
            "--backend", choices=("thread", "process"),
            default="thread",
            help="evaluation backend; 'process' evaluates design "
                 "points on worker processes (true multi-core) with "
                 "identical results",
        )
        explore.add_argument(
            "--effort", choices=("low", "normal", "high"),
            default="normal",
            help="mapping effort per design point",
        )
        explore.add_argument(
            "--max-iterations", type=int, default=None, metavar="N",
            help="override the effort preset's state-space iteration "
                 "budget for every design point (large bounded graphs "
                 "can need more than the preset to find their periodic "
                 "phase)",
        )
        explore.add_argument(
            "--engine", choices=ENGINE_MODES, default="auto",
            help="throughput engine tier for every design point "
                 "(default auto: analytic fast path where the graph "
                 "allows it, vectorized simulation otherwise)",
        )
        explore.add_argument(
            "--binding", choices=registered("binding"), default="greedy",
            help="binding strategy for every design point",
        )
        explore.add_argument(
            "--routing", choices=registered("routing"), default="xy",
            help="routing strategy for every design point",
        )
        explore.add_argument(
            "--buffer-policy", choices=registered("buffer"),
            default="linear",
            help="buffer growth schedule for every design point",
        )
        explore.add_argument(
            "--seed", type=int, default=None,
            help="seed for randomized binding strategies (ga)",
        )
        explore.add_argument(
            "--heterogeneous", action="store_true",
            help="also sweep the compact heterogeneous tile mix "
                 "(half-size slave memories)",
        )
        explore.add_argument(
            "--with-ca", action="store_true",
            help="also sweep communication-assist variants",
        )
        explore.add_argument(
            "--constraint", metavar="FRACTION",
            help="throughput constraint in iterations/cycle, e.g. 1/6000",
        )
        explore.add_argument(
            "--early-exit", action="store_true",
            help="stop at the first point meeting the constraint",
        )
        explore.add_argument(
            "--csv", action="store_true",
            help="emit machine-readable CSV instead of the report",
        )
        explore.add_argument(
            "--json", action="store_true",
            help="emit the canonical exploration-result artifact "
                 "payload (see docs/artifacts.md)",
        )
        _add_power_arguments(explore, verb="prune design points by")
        explore.set_defaults(handler=_cmd_explore)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
