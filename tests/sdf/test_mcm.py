"""Tests for maximum cycle mean / cycle ratio analysis."""

from fractions import Fraction

import pytest

from repro.exceptions import DeadlockError, GraphError
from repro.sdf import SDFGraph, maximum_cycle_mean
from repro.sdf.mcm import (
    CycleRatioBudgetError,
    hsdf_throughput,
    max_cycle_ratio,
)


def ring(times, tokens_on_back=1):
    g = SDFGraph("ring")
    names = [f"n{i}" for i in range(len(times))]
    for name, t in zip(names, times):
        g.add_actor(name, execution_time=t)
    for i in range(len(names) - 1):
        g.add_edge(f"e{i}", names[i], names[i + 1])
    g.add_edge("back", names[-1], names[0], initial_tokens=tokens_on_back)
    return g


def test_single_self_loop():
    g = SDFGraph("loop")
    g.add_actor("A", execution_time=10)
    g.add_edge("selfA", "A", "A", initial_tokens=1)
    assert maximum_cycle_mean(g) == 10


def test_simple_ring():
    g = ring([3, 4, 5])
    assert maximum_cycle_mean(g) == 12  # (3+4+5)/1


def test_ring_with_more_tokens():
    g = ring([3, 4, 5], tokens_on_back=2)
    assert maximum_cycle_mean(g) == 6  # 12/2


def test_max_over_multiple_cycles():
    g = SDFGraph("two_rings")
    g.add_actor("A", execution_time=10)
    g.add_actor("B", execution_time=1)
    g.add_edge("selfA", "A", "A", initial_tokens=1)  # mean 10
    g.add_edge("ab", "A", "B", initial_tokens=1)
    g.add_edge("ba", "B", "A")  # cycle mean (10+1)/1 = 11
    assert maximum_cycle_mean(g) == 11


def test_token_heavy_cycle_not_critical():
    g = SDFGraph("mix")
    g.add_actor("A", execution_time=6)
    g.add_actor("B", execution_time=6)
    g.add_edge("ab", "A", "B", initial_tokens=3)
    g.add_edge("ba", "B", "A", initial_tokens=3)  # mean 12/6 = 2
    g.add_edge("selfA", "A", "A", initial_tokens=1)  # mean 6 -> critical
    assert maximum_cycle_mean(g) == 6


def test_acyclic_graph_returns_none(two_actor_pipeline):
    assert maximum_cycle_mean(two_actor_pipeline) is None


def test_zero_token_cycle_raises():
    g = SDFGraph("dead")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")
    with pytest.raises(DeadlockError, match="zero-token cycle"):
        maximum_cycle_mean(g)


def test_multirate_graph_rejected(figure2_graph):
    with pytest.raises(GraphError, match="HSDF"):
        maximum_cycle_mean(figure2_graph)


def test_fractional_result():
    g = ring([3, 4], tokens_on_back=1)
    g.add_edge("extra", "n1", "n0", initial_tokens=2)
    # cycles: (3+4)/1 = 7 via back, (3+4)/2 = 3.5 via extra -> max 7
    assert maximum_cycle_mean(g) == 7


def test_exact_rational_mean():
    edges = [
        ("a", "b", 5, 0),
        ("b", "a", 2, 3),
    ]
    assert max_cycle_ratio(["a", "b"], edges) == Fraction(7, 3)


def test_empty_graph():
    assert max_cycle_ratio([], []) is None


def test_hsdf_throughput_is_reciprocal():
    g = ring([3, 4, 5])
    assert hsdf_throughput(g) == Fraction(1, 12)


def test_parallel_edges_strictest_wins():
    edges = [
        ("a", "a", 4, 1),
        ("a", "a", 4, 2),
    ]
    assert max_cycle_ratio(["a"], edges) == 4


def test_large_ring_exactness():
    times = [7, 11, 13, 17, 19, 23]
    g = ring(times, tokens_on_back=5)
    assert maximum_cycle_mean(g) == Fraction(sum(times), 5)


def test_relaxation_budget_enforced():
    edges = [
        ("a", "b", 5, 0),
        ("b", "a", 2, 3),
    ]
    with pytest.raises(CycleRatioBudgetError):
        max_cycle_ratio(["a", "b"], edges, max_relaxations=1)
    # A generous budget changes nothing about the answer.
    assert max_cycle_ratio(
        ["a", "b"], edges, max_relaxations=10_000
    ) == Fraction(7, 3)
