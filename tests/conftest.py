"""Shared fixtures: the paper's example graphs and generic graph builders."""

import pytest

from repro.sdf import SDFGraph


@pytest.fixture
def figure2_graph() -> SDFGraph:
    """The example SDF graph of Fig. 2.

    A fires once per iteration (self-edge with one initial token models its
    state), producing 2 tokens to B, 1 to C; B fires twice, producing 1
    token to C each firing; C consumes 1 token from A and 2 from B.
    Execution times are test values (the paper gives none for this graph).
    """
    g = SDFGraph("figure2")
    g.add_actor("A", execution_time=4)
    g.add_actor("B", execution_time=3)
    g.add_actor("C", execution_time=2)
    g.add_edge("a2b", "A", "B", production=2, consumption=1, token_size=4)
    g.add_edge("a2c", "A", "C", production=1, consumption=1, token_size=4)
    g.add_edge("b2c", "B", "C", production=1, consumption=2, token_size=4)
    g.add_edge("selfA", "A", "A", initial_tokens=1, implicit=True)
    return g


@pytest.fixture
def two_actor_pipeline() -> SDFGraph:
    """Minimal producer/consumer pipeline with unit rates."""
    g = SDFGraph("pipeline2")
    g.add_actor("P", execution_time=5)
    g.add_actor("Q", execution_time=7)
    g.add_edge("p2q", "P", "Q", token_size=8)
    return g


def make_chain(lengths, name="chain"):
    """Unit-rate chain with the given execution times."""
    g = SDFGraph(name)
    previous = None
    for i, t in enumerate(lengths):
        actor = f"n{i}"
        g.add_actor(actor, execution_time=t)
        if previous is not None:
            g.add_edge(f"e{i - 1}", previous, actor, token_size=4)
        previous = actor
    return g


@pytest.fixture
def chain_factory():
    return make_chain
